package match

import (
	"errors"
	"math"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"popstab/internal/pool"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/wire"
)

// This file is the shared chassis of every spatial Matcher (Torus, Ring,
// Grid, SmallWorld): a position side-array bound through population.Tracker
// hooks plus one sharded nearest-available matching pipeline. The concrete
// matchers differ only in their geometry (bucket layout + metric) and their
// placement closures; roughly 100 LoC each buys a new topology.
//
// # The sharded matching pipeline
//
// Nearest-available matching is a greedy sequential algorithm: agents are
// visited in a random order and each pairs with its nearest still-unmatched
// candidate, so the outcome of a visit depends on every earlier visit. The
// pipeline keeps the exact pairings of the historical serial implementation
// while sharding every O(n) stage:
//
//  1. bucket (sharded): cellIdx[i] = cell of agent i — pure float math. On
//     rounds that also have an adversary turn, the engine runs this phase
//     EARLY through PreBucket, overlapped with the serial adversary staging
//     (positions don't move until the staged alterations are applied, and a
//     round that does alter drops the prebucket — DESIGN.md §12);
//  2. scatter (sharded): a stable counting sort builds the CSR cell index
//     (cellStart/cellAgents) with the count→scan→scatter idiom of
//     population/applyplan.go: per-shard histograms over agent ranges, an
//     exclusive scan over (cell, shard), and a scatter into precomputed
//     disjoint slots. Within a cell, slots are laid out shard-major and
//     shards cover ascending agent ranges, so the layout — ascending agent
//     index within each cell — is bit-identical to the historical serial
//     cursor scatter at every shard count;
//  3. candidates (sharded): each agent scans its neighborhood cells and
//     keeps its candK nearest candidates, sorted by (distance, scan order)
//     — sharded across Workers with no shared writes (each agent owns its
//     candidate slots);
//  4. greedy walk (speculative parallel): visit agents in a random order
//     drawn from the matcher's stream; each unmatched agent takes the first
//     unmatched entry of its precomputed candidate list. Because the list
//     is the prefix of the full stable ordering, "first unmatched stored
//     candidate" IS the nearest unmatched candidate — unless all stored
//     entries are taken while further candidates exist, in which case an
//     exact fallback rescan of the neighborhood (same metric, same
//     tie-breaking) recovers the answer. The walk is inherently sequential,
//     so shards first walk disjoint slices of the visit order
//     OPTIMISTICALLY against a claim array, and a serial validation pass
//     then accepts exactly the speculative pairings that provably equal the
//     serial outcome, repairing the rest through the serial path (rescan
//     included) — see the next section.
//
// # The speculative walk
//
// Speculation shards the visit order [0, n) into contiguous slices. Each
// shard walks its slice against a shared claim array (claim[i] = lowest
// visit index that touched agent i so far, maintained with an atomic
// min-CAS — the same lowest-visit-wins rule the serial loop's first-
// encounter order applies), recording for each visit v a tentative partner
// spec[v] and its candidate-list position specPos[v], or one of two
// sentinels: specNone (provably pairs with nobody: the agent saw zero
// candidates) and specRepair (speculation gave up).
//
// Correctness does NOT rest on the claims — races may leave arbitrary
// tentative pairings. It rests on the serial validation pass, which scans
// the visit order once and accepts spec[v] = j at position k only when,
// under the true pairing built so far, the serial walk would have made the
// identical choice: agent i still unmatched, j still unmatched, and every
// stored candidate BEFORE position k already matched (so j is the first
// unmatched stored candidate — the serial pick, with no rescan reachable).
// Any visit failing the check re-runs the unmodified serial body, exact
// rescan fallback included. By induction over the visit order the pairing
// after every visit equals the serial pairing, so the output is
// bit-identical to the historical serial walk at every worker count; the
// claims only control how often the (cheap) accept path wins over the
// (serial) repair path. Degenerate densities — everyone in one bucket —
// make speculation useless, so a max-bucket-occupancy gate measured by the
// scatter falls back to the pure serial walk (see specMaxCellOcc).
//
// # Tie-breaking rule
//
// Candidates at exactly equal distance are ordered by scan position: cells
// are visited in the geometry's fixed neighborhood order and agents within
// a cell in ascending index order, and the bounded insertion sort of phase
// 3 (like the fallback rescan's strict `<` minimum) lets the earliest
// encounter win. This is the same rule the historical serial loop applied,
// which is what makes the pipeline's output bit-identical to it — and,
// since phases 1–3 are deterministic functions with shard-invariant
// layouts and phase 4 is validated visit by visit against the serial rule,
// bit-identical across every worker count.
//
// The pipeline itself consumes randomness only in the serial walk (the
// visit permutation). Matchers that need per-agent coins inside the sharded
// candidate phase (SmallWorld's rewiring) draw them from counter-based
// streams keyed on (matcher key, sample counter, agent index) — see
// prng.SeedCounter — so shard boundaries cannot perturb them.

// candK is the number of nearest candidates precomputed per agent. Larger
// values make the exact fallback rescan rarer but cost memory bandwidth in
// the sharded candidate phase. The rescan runs in the SERIAL part of the
// greedy walk (the repair path), so its frequency bounds the parallel
// speedup: at ~1 agent per cell, the probability that an agent's 8 nearest
// are all matched before its visit is a fraction of a percent, which keeps
// the rescan time negligible against the sharded phases.
const candK = 8

// maxNbrCells bounds a geometry's neighborhood size (3×3 cells in 2-D,
// 3 cells in 1-D).
const maxNbrCells = 9

// minSpatialShard bounds how finely the sharded phases split: below ~1k
// agents per worker the goroutine spawn overhead exceeds the per-agent
// work. Purely a scheduling heuristic — output is worker-count-invariant.
const minSpatialShard = 1024

// specMaxCellOcc is the speculation density gate for the greedy walk: when
// any bucket holds more than this many agents, candidate lists overlap so
// heavily that most speculative picks would be repaired anyway, so the walk
// falls back to the pure serial path. Uniform densities put ~1 agent per
// bucket (max occupancy ~12 at n = 2²⁰ by the Poisson tail); all-in-one-
// patch adversarial densities blow far past the gate. The scatter measures
// max occupancy for free in its counting pass.
const specMaxCellOcc = 64

// spec[v] sentinels of the speculative walk. Non-negative values are a
// tentative partner index.
const (
	// specNone marks a visit that provably pairs with nobody: the agent had
	// zero candidates in its neighborhood, a fact independent of the match
	// state, so validation can accept it without any check.
	specNone = int32(-1)
	// specRepair marks a visit whose speculation gave up (everything
	// claimed by earlier visits, or the stored prefix exhausted); validation
	// re-runs it through the serial body.
	specRepair = int32(-2)
)

// specForceShards, when positive, overrides the speculative walk's shard
// count (still subject to the density gate). Tests and the CI race job set
// POPSTAB_FORCE_SPEC_SHARDS to force high fan-out on small populations,
// stressing the claim protocol far beyond what n/minSpatialShard would
// allow.
var specForceShards = envInt("POPSTAB_FORCE_SPEC_SHARDS")

// envInt parses a non-negative integer environment knob (0 when unset or
// malformed).
func envInt(key string) int {
	v := os.Getenv(key)
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// geometry is the static-dispatch seam between the shared pipeline and a
// concrete topology: bucket layout, neighborhood scan order, and metric.
// The type parameter trick (G's prepare returns G) keeps every call
// monomorphized — no interface dispatch on the per-candidate hot path.
type geometry[G any] interface {
	// prepare returns the geometry instance for a population of n agents
	// (bucket-grid resolution derived from n).
	prepare(n int) G
	// numCells reports the bucket count of the prepared grid.
	numCells() int
	// cell maps a position to its bucket index.
	cell(pt population.Point) int32
	// neighborhood appends the buckets adjacent to c (including c) to buf
	// in the fixed scan order that defines candidate tie-breaking.
	neighborhood(c int32, buf []int32) []int32
	// dist2 is the squared distance between two positions in this metric.
	dist2(a, b population.Point) float64
	// patch draws a position uniformly within distance r of center under
	// this geometry (wrapping or reflecting as the topology demands),
	// consuming src. r ≤ 0 returns center exactly.
	patch(src *prng.Source, center population.Point, r float64) population.Point
}

// spatial is the shared state of a spatial matcher: the bound position
// side-array, the worker count, and the pipeline's reusable buffers.
// Concrete matchers embed it and call bind from their Bind.
type spatial[G geometry[G]] struct {
	geo     G
	workers int
	// pool, when set (SetPool), runs the sharded phases on the engine's
	// persistent worker pool; without one (standalone use) they fall back to
	// spawning per-round goroutines via parallelFor. Same shards either way.
	pool *pool.Pool

	pos *population.Positions
	src *prng.Source
	// probeSrc feeds SampleProbe so measurement probes never perturb the
	// placement stream (src) or the engine's matching stream.
	probeSrc *prng.Source

	// rewrite, when non-nil, may replace agent i's candidate list in the
	// sharded candidate phase (SmallWorld rewiring): it writes up to
	// len(dst) candidate indices into dst and returns how many, or -1 to
	// keep the geometric candidates. It runs concurrently from shards and
	// must be a pure function of (i, n, call) — per-agent randomness comes
	// from counter-based streams, never from a shared Source.
	rewrite func(i, n int, call uint64, dst []int32) int
	// prematch, when non-nil, runs serially at the top of every sample,
	// before the sharded phases — the hook SmallWorld uses to precompute
	// per-round state the concurrent rewrite reads (the rewire-force target
	// list). It must not consume randomness.
	prematch func(n int)
	// calls counts SampleMatch invocations (probe samples count
	// separately, with probeBit set) — the per-round word of the rewrite
	// hook's counter streams.
	calls, probeCalls uint64

	// stats accumulates the per-phase pipeline counters (PhaseReporter).
	stats PipelineStats

	// preValid marks a pending PreBucket for exactly preN agents; the next
	// sample over that n skips phase 1. One sample only, dropped on any
	// other n and by DropPrebucket.
	preValid bool
	preN     int

	// maxCell is the largest bucket occupancy measured by the last scatter —
	// the speculative walk's density-gate input.
	maxCell int32

	// Pipeline buffers, reused across rounds (1.5× growth slack).
	cellIdx    []int32            // agent -> bucket
	cellStart  []int32            // CSR: bucket c holds cellAgents[cellStart[c]:cellStart[c+1]]
	cellAgents []int32            // bucketed agent indices, ascending within a cell
	posByCell  []population.Point // positions in CSR order — sequential reads in the candidate scan
	cnt        []int32            // scatter histograms, one row of ncells per shard
	cand       []int32            // candK nearest candidates per agent
	candN      []uint8            // stored candidate count per agent
	candTotal  []int32            // total candidates encountered per agent
	order      []int32            // visit permutation
	claim      []int32            // speculative walk: lowest visit index touching each agent
	spec       []int32            // speculative walk: tentative partner (or sentinel) per visit
	specPos    []uint8            // speculative walk: candidate-list position of spec[v]
}

// probeBit distinguishes probe-sample rewrite streams from match-sample
// streams so probing can never replay or perturb simulation randomness.
const probeBit = uint64(1) << 63

// bind attaches the position side-array (placement via the given closures)
// and captures the matcher streams. Call exactly once, before the first
// SampleMatch.
func (s *spatial[G]) bind(pop *population.Population, src *prng.Source, place func() population.Point, spawn func(population.Point) population.Point) {
	if s.pos != nil {
		panic("match: spatial matcher bound twice")
	}
	s.src = src
	s.probeSrc = src.Split()
	s.pos = &population.Positions{Place: population.PlaceFunc(place), Spawn: spawn}
	pop.Attach(s.pos)
}

// Positions implements Space: the bound position side-array (nil before
// Bind).
func (s *spatial[G]) Positions() *population.Positions { return s.pos }

// Dist2 implements Space with the geometry's metric. The metric is position-
// only (bucket resolution does not enter it), so it is valid before the
// first SampleMatch.
func (s *spatial[G]) Dist2(a, b population.Point) float64 { return s.geo.dist2(a, b) }

// PatchPoint implements Space: a uniform draw within distance r of center
// under the geometry, from the caller's stream.
func (s *spatial[G]) PatchPoint(center population.Point, r float64, src *prng.Source) population.Point {
	return s.geo.patch(src, center, r)
}

// SetWorkers implements WorkerSetter: it sets the goroutine count of the
// sharded pipeline phases. Output is bit-identical for every worker count;
// the engine wires its own Workers value through at construction.
func (s *spatial[G]) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// SetPool implements PoolSetter: the sharded phases reuse the engine's
// parked workers instead of spawning goroutines every round. Purely a
// throughput setting — shard boundaries and output are unchanged.
func (s *spatial[G]) SetPool(p *pool.Pool) { s.pool = p }

// PipelineStats implements PhaseReporter: the cumulative per-phase counters
// of the matching pipeline since construction.
func (s *spatial[G]) PipelineStats() PipelineStats { return s.stats }

// run executes fn over [0, n) in contiguous shards: on the pool when one is
// attached, else via per-call goroutines (parallelFor), inline when one
// shard suffices.
func (s *spatial[G]) run(n int, fn func(lo, hi int)) {
	if s.pool != nil {
		s.pool.Run(n, minSpatialShard, fn)
		return
	}
	parallelFor(n, s.workers, fn)
}

// shardCount reports how many contiguous shards run() would split n items
// into — the partition the scatter and the speculative walk size their own
// per-shard state by.
func (s *spatial[G]) shardCount(n int) int {
	var w int
	if s.pool != nil {
		w = s.pool.Shards(n, minSpatialShard)
	} else {
		w = s.workers
		if lim := n / minSpatialShard; w > lim {
			w = lim
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runN fans fn out over shard indices 0..w-1 (on the pool when attached,
// else via per-call goroutines), inline when w ≤ 1.
func (s *spatial[G]) runN(w int, fn func(k int)) {
	if w <= 1 {
		if w == 1 {
			fn(0)
		}
		return
	}
	if s.pool != nil {
		s.pool.RunN(w, fn)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for k := 1; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			fn(k)
		}(k)
	}
	fn(0)
	wg.Wait()
}

// SampleMatch implements the Matcher sampling method with sharded
// nearest-available matching over the bound positions, drawing the visit
// order from src.
func (s *spatial[G]) SampleMatch(pop *population.Population, src *prng.Source, p *Pairing) {
	if s.pos == nil {
		panic("match: spatial matcher used before Bind")
	}
	s.calls++
	s.sample(pop.Len(), src, p, s.calls)
}

// SampleProbe draws one matching from a dedicated probe stream split off at
// Bind time. Measurement probes (e.g. color-agreement sampling between
// rounds) use it so they perturb neither the simulation's matching stream
// nor the placement stream: a probed and an unprobed run of the same
// configuration stay on identical trajectories.
func (s *spatial[G]) SampleProbe(pop *population.Population, p *Pairing) {
	if s.pos == nil {
		panic("match: spatial matcher used before Bind")
	}
	s.probeCalls++
	s.sample(pop.Len(), s.probeSrc, p, s.probeCalls|probeBit)
}

// PreBucket implements Prebucketer: it runs phase 1 (bucketing) of the next
// sample early, for callers that can overlap it with serial work that does
// not move positions — the engine overlaps it with the adversary's staging
// turn (DESIGN.md §12). The next sample over exactly n agents reuses the
// buckets; any other n, or an intervening DropPrebucket, discards them. The
// caller owns the synchronization: PreBucket must happen-before the sample,
// with no position mutation in between.
func (s *spatial[G]) PreBucket(n int) {
	s.preValid = false
	if s.pos == nil || n < 2 {
		return
	}
	t0 := time.Now()
	pos := s.pos.Slice()
	g := s.geo.prepare(n)
	s.ensure(n, g.numCells())
	s.bucket(g, pos, n)
	s.stats.BucketNS += uint64(time.Since(t0))
	s.preN = n
	s.preValid = true
}

// DropPrebucket implements Prebucketer: it discards a pending PreBucket.
// The engine calls it after applying adversary alterations, which move,
// add, or remove agents.
func (s *spatial[G]) DropPrebucket() { s.preValid = false }

// bucket is phase 1: cellIdx[i] = bucket of agent i, sharded.
func (s *spatial[G]) bucket(g G, pos []population.Point, n int) {
	s.run(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.cellIdx[i] = g.cell(pos[i])
		}
	})
}

// EncodeState implements Stateful: the placement and probe streams, the
// sample counters keying the rewrite hook's counter streams, and the
// position side-array (live positions plus any queued placements). The
// geometry itself and the matcher key are construction-time wiring,
// re-derived identically when the restored matcher is rebuilt and rebound
// from the same configuration and seed. Pipeline statistics and a pending
// prebucket are deliberately not state: stats are observability, and a
// prebucket never outlives the round that took the snapshot.
func (s *spatial[G]) EncodeState(e *wire.Enc) {
	for _, w := range s.src.State() {
		e.U64(w)
	}
	for _, w := range s.probeSrc.State() {
		e.U64(w)
	}
	e.U64(s.calls)
	e.U64(s.probeCalls)
	s.pos.EncodeState(e)
}

// DecodeState implements Stateful; the matcher must already be bound.
func (s *spatial[G]) DecodeState(d *wire.Dec) error {
	if s.pos == nil {
		return errDecodeUnbound
	}
	var st, pst [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	for i := range pst {
		pst[i] = d.U64()
	}
	calls := d.U64()
	probeCalls := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if err := s.pos.DecodeState(d); err != nil {
		return err
	}
	s.src.SetState(st)
	s.probeSrc.SetState(pst)
	s.calls = calls
	s.probeCalls = probeCalls
	s.preValid = false
	return nil
}

// errDecodeUnbound reports DecodeState on an unbound matcher.
var errDecodeUnbound = errors.New("match: DecodeState before Bind")

// ensure sizes the pipeline buffers for n agents over ncells buckets,
// growing with 1.5× slack so a steadily growing population does not
// reallocate every round. (The scatter histograms size themselves: their
// footprint depends on the shard count too.)
func (s *spatial[G]) ensure(n, ncells int) {
	if cap(s.cellIdx) < n {
		c := n + n/2
		s.cellIdx = make([]int32, c)
		s.cellAgents = make([]int32, c)
		s.posByCell = make([]population.Point, c)
		s.cand = make([]int32, candK*c)
		s.candN = make([]uint8, c)
		s.candTotal = make([]int32, c)
		s.order = make([]int32, c)
		s.claim = make([]int32, c)
		s.spec = make([]int32, c)
		s.specPos = make([]uint8, c)
	}
	if cap(s.cellStart) < ncells+1 {
		s.cellStart = make([]int32, ncells+1+ncells/2)
	}
	s.cellIdx = s.cellIdx[:n]
	s.cellAgents = s.cellAgents[:n]
	s.posByCell = s.posByCell[:n]
	s.cand = s.cand[:candK*n]
	s.candN = s.candN[:n]
	s.candTotal = s.candTotal[:n]
	s.order = s.order[:n]
	s.claim = s.claim[:n]
	s.spec = s.spec[:n]
	s.specPos = s.specPos[:n]
	s.cellStart = s.cellStart[:ncells+1]
}

// sample runs the four-phase pipeline documented at the top of this file.
func (s *spatial[G]) sample(n int, src *prng.Source, p *Pairing, call uint64) {
	p.Reset(n)
	if n < 2 {
		s.preValid = false
		return
	}
	if s.prematch != nil {
		s.prematch(n)
	}
	pos := s.pos.Slice()
	g := s.geo.prepare(n)
	ncells := g.numCells()
	s.ensure(n, ncells)
	s.stats.Samples++

	// Phase 1 (sharded): bucket every agent — unless a still-valid
	// PreBucket for exactly this n already did, overlapped with the
	// adversary turn. A prebucket is good for one sample only.
	if !s.preValid || s.preN != n {
		t0 := time.Now()
		s.bucket(g, pos, n)
		s.stats.BucketNS += uint64(time.Since(t0))
	}
	s.preValid = false

	// Phase 2 (sharded): stable counting-sort scatter into the CSR index.
	t0 := time.Now()
	s.scatter(pos, n, ncells)
	s.stats.ScatterNS += uint64(time.Since(t0))

	// Phase 3 (sharded): per-agent candK-nearest candidate selection,
	// iterated in CSR order so agents of the same cell reuse each other's
	// cached neighborhood rows, scanning the cell-sorted position copy
	// (posByCell) in contiguous segments instead of gathering pos[] at
	// random. The scan ORDER over candidates is unchanged — segments are
	// maximal runs of consecutive cell ids in the geometry's neighborhood
	// order — so tie-breaking (and the output) is bit-identical to the
	// per-agent form.
	t0 = time.Now()
	rewrite := s.rewrite
	s.run(n, func(lo, hi int) {
		var nbuf [maxNbrCells]int32
		var segs [maxNbrCells][2]int32
		// Locate the cell containing CSR slot lo.
		c := int32(0)
		{
			hiC, loC := int32(ncells), int32(0)
			for loC < hiC {
				mid := (loC + hiC) / 2
				if s.cellStart[mid+1] > int32(lo) {
					hiC = mid
				} else {
					loC = mid + 1
				}
			}
			c = loC
		}
		nseg := -1 // neighborhood segments of cell c not yet computed
		for k := lo; k < hi; k++ {
			for int32(k) >= s.cellStart[c+1] {
				c++
				nseg = -1
			}
			i := int(s.cellAgents[k])
			if rewrite != nil {
				if kn := rewrite(i, n, call, s.cand[i*candK:(i+1)*candK]); kn >= 0 {
					s.candN[i] = uint8(kn)
					s.candTotal[i] = int32(kn)
					continue
				}
			}
			if nseg < 0 {
				cells := g.neighborhood(c, nbuf[:0])
				nseg = 0
				for si := 0; si < len(cells); {
					sj := si + 1
					for sj < len(cells) && cells[sj] == cells[sj-1]+1 {
						sj++
					}
					segs[nseg] = [2]int32{s.cellStart[cells[si]], s.cellStart[cells[sj-1]+1]}
					nseg++
					si = sj
				}
			}
			s.nearestCandidates(g, i, k, segs[:nseg])
		}
	})
	s.stats.CandNS += uint64(time.Since(t0))

	// Phase 4: random-order greedy matching. The visit permutation's
	// identity fill shards (pure per-index writes); the Fisher–Yates
	// shuffle then consumes exactly the variates src.PermInt32Into would —
	// PermInt32Into IS identity-fill + Shuffle — so the order, and the
	// walk, are bit-identical to the historical form. The walk itself runs
	// speculatively (see the file comment) when there is parallelism to
	// gain and the density gate allows; otherwise, or when forced, it runs
	// the plain serial loop.
	t0 = time.Now()
	s.run(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.order[i] = int32(i)
		}
	})
	src.Shuffle(n, func(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] })
	if w := s.walkShards(n); w > 1 && s.maxCell <= specMaxCellOcc {
		s.speculate(n, w)
		conflicts := s.validate(g, pos, p)
		s.stats.SpecWalks++
		s.stats.SpecVisits += uint64(n)
		s.stats.SpecConflicts += conflicts
	} else {
		var nbuf [maxNbrCells]int32
		for _, oi := range s.order {
			i := int(oi)
			if p.Nbr[i] != Unmatched {
				continue
			}
			s.walkVisit(g, pos, p, i, nbuf[:0])
		}
		s.stats.SerialWalks++
	}
	s.stats.WalkNS += uint64(time.Since(t0))
}

// maxScatterShards caps the scatter fan-out: the count→scan→scatter passes
// keep one histogram row of ncells counters per shard, so fan-out costs
// shards×ncells int32s of memory and zeroing bandwidth, and past ~8 shards
// the passes are memory-bound anyway. maxScatterCnt additionally bounds the
// total histogram footprint — cells scale like n, so giant populations
// degrade toward fewer shards instead of allocating multi-hundred-MB count
// arrays.
const (
	maxScatterShards = 8
	maxScatterCnt    = 1 << 25 // total histogram entries (int32): 128 MiB ceiling
)

// scatter is phase 2: it builds cellStart/cellAgents/posByCell — the stable
// counting-sort CSR layout, ascending agent index within each cell — with
// the ApplyPlan count→scan→scatter idiom, and measures the maximum bucket
// occupancy (the speculative walk's density gate) as a byproduct:
//
//	pass 1 (sharded over agent ranges): per-shard histograms cnt[k][c];
//	pass 2 (sharded over cell ranges): down-column exclusive scan turning
//	       cnt[k][c] into "agents of cell c in shards before k", cell
//	       totals into cellStart[c+1], and per-shard total/max folds;
//	       a tiny serial exclusive scan over the per-shard totals;
//	pass 3 (sharded over cell ranges): prefix sum finishing cellStart;
//	pass 4 (sharded over agent ranges): each shard scatters its own agents
//	       into cellStart[c] + cnt[k][c]++ — precomputed disjoint slots.
//
// Within a cell, slots are laid out shard-major and shards cover ascending
// agent ranges, so the layout is bit-identical to the historical serial
// cursor scatter at every shard count; with one shard the passes ARE that
// serial scatter (histogram, prefix, cursor walk), inline on the caller.
func (s *spatial[G]) scatter(pos []population.Point, n, ncells int) {
	w := s.shardCount(n)
	if w > maxScatterShards {
		w = maxScatterShards
	}
	if ncells > 0 {
		if lim := maxScatterCnt / ncells; w > lim {
			w = lim
		}
	}
	if w < 1 {
		w = 1
	}
	if cap(s.cnt) < w*ncells {
		s.cnt = make([]int32, w*ncells)
	}
	cnt := s.cnt[:w*ncells]
	var ab, cb [maxScatterShards + 1]int
	for k := 0; k <= w; k++ {
		ab[k] = k * n / w
		cb[k] = k * ncells / w
	}

	// Pass 1: per-shard histograms (each shard zeroes its own row).
	s.runN(w, func(k int) {
		row := cnt[k*ncells : (k+1)*ncells]
		for i := range row {
			row[i] = 0
		}
		for _, c := range s.cellIdx[ab[k]:ab[k+1]] {
			row[c]++
		}
	})

	// Pass 2: per-cell down-column exclusive scan; cell totals land in
	// cellStart[c+1]; per-shard sums and maxima fold out.
	start := s.cellStart
	var shardSum, shardMax [maxScatterShards]int32
	s.runN(w, func(k int) {
		sum, maxc := int32(0), int32(0)
		for c := cb[k]; c < cb[k+1]; c++ {
			t := int32(0)
			for r := 0; r < w; r++ {
				at := r*ncells + c
				v := cnt[at]
				cnt[at] = t
				t += v
			}
			start[c+1] = t
			sum += t
			if t > maxc {
				maxc = t
			}
		}
		shardSum[k] = sum
		shardMax[k] = maxc
	})
	base, maxCell := int32(0), int32(0)
	for k := 0; k < w; k++ {
		shardSum[k], base = base, base+shardSum[k]
		if shardMax[k] > maxCell {
			maxCell = shardMax[k]
		}
	}
	s.maxCell = maxCell

	// Pass 3: finish the prefix sum over cell totals.
	start[0] = 0
	s.runN(w, func(k int) {
		run := shardSum[k]
		for c := cb[k]; c < cb[k+1]; c++ {
			run += start[c+1]
			start[c+1] = run
		}
	})

	// Pass 4: scatter into precomputed disjoint slots.
	s.runN(w, func(k int) {
		row := cnt[k*ncells:]
		for i := ab[k]; i < ab[k+1]; i++ {
			c := s.cellIdx[i]
			at := start[c] + row[c]
			row[c]++
			s.cellAgents[at] = int32(i)
			s.posByCell[at] = pos[i]
		}
	})
}

// walkShards reports the speculative walk's fan-out: the pipeline's shard
// count, or the POPSTAB_FORCE_SPEC_SHARDS override. One shard means the
// plain serial walk.
func (s *spatial[G]) walkShards(n int) int {
	if w := specForceShards; w > 0 {
		if w > n/2 {
			w = n / 2
		}
		return w
	}
	return s.shardCount(n)
}

// claimMin lowers *p to v if v is smaller (atomic min via CAS), reporting
// whether v now holds the claim — i.e. no earlier visit got there first.
func claimMin(p *int32, v int32) bool {
	for {
		cur := atomic.LoadInt32(p)
		if cur <= v {
			return false
		}
		if atomic.CompareAndSwapInt32(p, cur, v) {
			return true
		}
	}
}

// speculate runs the optimistic walk: w shards over disjoint slices of the
// visit order, each recording tentative pairings in spec/specPos against
// the shared claim array. Claims are only a conflict-reducing heuristic —
// validate() establishes correctness independently — so the races inherent
// in concurrent claiming are harmless by design.
func (s *spatial[G]) speculate(n, w int) {
	free := int32(n) // above every real visit index
	s.runN(w, func(k int) {
		for i := k * n / w; i < (k+1)*n/w; i++ {
			s.claim[i] = free
		}
	})
	s.runN(w, func(k int) {
		for v := k * n / w; v < (k+1)*n/w; v++ {
			s.speculateVisit(v)
		}
	})
}

// speculateVisit walks one visit optimistically. It reads only the phase-3
// outputs and the claim array — never the pairing — so shards share nothing
// but the atomically-maintained claims.
func (s *spatial[G]) speculateVisit(v int) {
	i := int(s.order[v])
	if s.candTotal[i] == 0 {
		// No candidates at all: the serial walk provably leaves this visit
		// pairless regardless of match state.
		s.spec[v] = specNone
		return
	}
	v32 := int32(v)
	if !claimMin(&s.claim[i], v32) {
		// An earlier visit touched i (probably pairing with it): predict i
		// is matched by the time v runs. Validation skips or repairs.
		s.spec[v] = specRepair
		return
	}
	base := i * candK
	stored := int(s.candN[i])
	for k := 0; k < stored; k++ {
		j := s.cand[base+k]
		if claimMin(&s.claim[j], v32) {
			s.spec[v] = j
			s.specPos[v] = uint8(k)
			return
		}
	}
	// Everything stored is claimed by earlier visits (or the stored prefix
	// would be exhausted, implying a rescan): serial repair decides.
	s.spec[v] = specRepair
}

// validate is the serial pass that makes the speculative walk exact: it
// scans the visit order once and accepts a tentative pairing only when the
// serial walk, given the true pairing built so far, would have made the
// identical choice — otherwise it re-runs the visit through the unmodified
// serial body (walkVisit, exact rescan included). The induction in the
// file comment is the bit-identity argument; conflicts is the repair
// count.
func (s *spatial[G]) validate(g G, pos []population.Point, p *Pairing) (conflicts uint64) {
	var nbuf [maxNbrCells]int32
	for v, oi := range s.order {
		i := int(oi)
		if p.Nbr[i] != Unmatched {
			continue
		}
		sp := s.spec[v]
		if sp == specNone {
			continue
		}
		if sp >= 0 {
			j := sp
			if p.Nbr[j] == Unmatched {
				// j is the serial pick iff every stored candidate before it
				// is already matched (then j is the FIRST unmatched stored
				// candidate, and the rescan branch is unreachable). In the
				// common case specPos[v] == 0 and the prefix check is free.
				ok := true
				base := i * candK
				for m := 0; m < int(s.specPos[v]); m++ {
					if p.Nbr[s.cand[base+m]] == Unmatched {
						ok = false
						break
					}
				}
				if ok {
					p.Nbr[i] = j
					p.Nbr[j] = int32(i)
					continue
				}
			}
		}
		conflicts++
		s.walkVisit(g, pos, p, i, nbuf[:0])
	}
	return conflicts
}

// walkVisit is the serial greedy-walk body for one unmatched agent: first
// unmatched stored candidate, exact fallback rescan when the stored prefix
// is exhausted but the neighborhood holds more. Shared verbatim by the
// serial walk and the validation repair path — the speculative walk's
// bit-identity rests on repairs running exactly this code.
func (s *spatial[G]) walkVisit(g G, pos []population.Point, p *Pairing, i int, nbuf []int32) {
	best := int32(-1)
	stored := int(s.candN[i])
	for k := 0; k < stored; k++ {
		if j := s.cand[i*candK+k]; p.Nbr[j] == Unmatched {
			best = j
			break
		}
	}
	if best < 0 && int(s.candTotal[i]) > stored {
		// All stored candidates were taken but the neighborhood holds
		// more: exact fallback rescan (same metric, same tie-break).
		best = s.rescan(g, pos, p, i, nbuf)
	}
	if best >= 0 {
		p.Nbr[i] = best
		p.Nbr[best] = int32(i)
	}
}

// nearestCandidates fills agent i's candidate slots with its candK nearest
// neighbors in (distance, scan order) — the prefix of the full stable
// ordering — via a bounded stable insertion sort over the neighborhood
// segments. selfK is agent i's own CSR slot (skipped); segs are [start,
// end) ranges of posByCell/cellAgents covering the neighborhood in exact
// scan order.
func (s *spatial[G]) nearestCandidates(g G, i, selfK int, segs [][2]int32) {
	var bd [candK]float64
	base := i * candK
	stored, total := 0, 0
	pi := s.posByCell[selfK]
	for _, sg := range segs {
		for k2 := sg[0]; k2 < sg[1]; k2++ {
			if int(k2) == selfK {
				continue
			}
			total++
			d := g.dist2(pi, s.posByCell[k2])
			if stored == candK && d >= bd[candK-1] {
				continue
			}
			// Insertion point: after every stored candidate with distance
			// ≤ d, so equal distances keep scan order (stability).
			at := stored
			for at > 0 && d < bd[at-1] {
				at--
			}
			if stored < candK {
				stored++
			}
			for m := stored - 1; m > at; m-- {
				bd[m] = bd[m-1]
				s.cand[base+m] = s.cand[base+m-1]
			}
			bd[at] = d
			s.cand[base+at] = s.cellAgents[k2]
		}
	}
	s.candN[i] = uint8(stored)
	s.candTotal[i] = int32(total)
}

// rescan is the exact nearest-unmatched search over agent i's neighborhood:
// the historical serial algorithm, used only when the precomputed candidate
// prefix is exhausted.
func (s *spatial[G]) rescan(g G, pos []population.Point, p *Pairing, i int, nbuf []int32) int32 {
	best := int32(-1)
	bestD := math.Inf(1)
	for _, c := range g.neighborhood(s.cellIdx[i], nbuf) {
		for _, j := range s.cellAgents[s.cellStart[c]:s.cellStart[c+1]] {
			if int(j) == i || p.Nbr[j] != Unmatched {
				continue
			}
			if d := g.dist2(pos[i], pos[j]); d < bestD {
				bestD = d
				best = j
			}
		}
	}
	return best
}

// parallelFor runs fn over up to `workers` contiguous shards of [0, n),
// inline on the caller's goroutine when one shard suffices. Shard
// boundaries are invisible to callers whose fn is a pure per-index
// function.
func parallelFor(n, workers int, fn func(lo, hi int)) {
	w := workers
	if lim := n / minSpatialShard; w > lim {
		w = lim
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(k*n/w, (k+1)*n/w)
	}
	wg.Wait()
}

// gaussianOffset draws a 2-D Gaussian offset of standard deviation sigma
// via Box-Muller from two uniforms of src — the daughter-placement kernel
// shared by the spatial matchers.
func gaussianOffset(src *prng.Source, sigma float64) (dx, dy float64) {
	u1 := src.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := src.Float64()
	r := sigma * math.Sqrt(-2*math.Log(u1))
	return r * math.Cos(2*math.Pi*u2), r * math.Sin(2*math.Pi*u2)
}
