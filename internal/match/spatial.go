package match

import (
	"errors"
	"math"
	"sync"

	"popstab/internal/pool"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/wire"
)

// This file is the shared chassis of every spatial Matcher (Torus, Ring,
// Grid, SmallWorld): a position side-array bound through population.Tracker
// hooks plus one sharded nearest-available matching pipeline. The concrete
// matchers differ only in their geometry (bucket layout + metric) and their
// placement closures; roughly 100 LoC each buys a new topology.
//
// # The sharded matching pipeline
//
// Nearest-available matching is a greedy sequential algorithm: agents are
// visited in a random order and each pairs with its nearest still-unmatched
// candidate, so the outcome of a visit depends on every earlier visit. The
// pipeline keeps that serial walk — and therefore the exact pairings of the
// historical serial implementation — but hoists all of the O(n) geometry
// work out of it into embarrassingly parallel per-agent phases:
//
//  1. bucket (sharded): cellIdx[i] = cell of agent i — pure float math;
//  2. scatter (serial): a stable counting sort builds the CSR cell index
//     (cellStart/cellAgents), preserving ascending-index order within each
//     cell — cheap integer passes, kept serial because the layout is
//     order-dependent;
//  3. candidates (sharded): each agent scans its neighborhood cells and
//     keeps its candK nearest candidates, sorted by (distance, scan order)
//     — the phase that dominates the round at N = 2²⁰, sharded across
//     Workers with no shared writes (each agent owns its candidate slots);
//  4. greedy walk (serial): visit agents in a random order drawn from the
//     matcher's stream; each unmatched agent takes the first unmatched
//     entry of its precomputed candidate list. Because the list is the
//     prefix of the full stable ordering, "first unmatched stored
//     candidate" IS the nearest unmatched candidate — unless all stored
//     entries are taken while further candidates exist, in which case an
//     exact fallback rescan of the neighborhood (same metric, same
//     tie-breaking) recovers the answer.
//
// # Tie-breaking rule
//
// Candidates at exactly equal distance are ordered by scan position: cells
// are visited in the geometry's fixed neighborhood order and agents within
// a cell in ascending index order, and the bounded insertion sort of phase
// 3 (like the fallback rescan's strict `<` minimum) lets the earliest
// encounter win. This is the same rule the historical serial loop applied,
// which is what makes the pipeline's output bit-identical to it — and,
// since phases 1 and 3 are pure per-agent functions and phases 2 and 4 are
// serial, bit-identical across every worker count.
//
// The pipeline itself consumes randomness only in the serial walk (the
// visit permutation). Matchers that need per-agent coins inside the sharded
// candidate phase (SmallWorld's rewiring) draw them from counter-based
// streams keyed on (matcher key, sample counter, agent index) — see
// prng.SeedCounter — so shard boundaries cannot perturb them.

// candK is the number of nearest candidates precomputed per agent. Larger
// values make the exact fallback rescan rarer but cost memory bandwidth in
// the sharded candidate phase. The rescan runs in the SERIAL greedy walk,
// so its frequency bounds the parallel speedup: at ~1 agent per cell, the
// probability that an agent's 8 nearest are all matched before its visit
// is a fraction of a percent, which keeps the walk's rescan time
// negligible against the sharded phases.
const candK = 8

// maxNbrCells bounds a geometry's neighborhood size (3×3 cells in 2-D,
// 3 cells in 1-D).
const maxNbrCells = 9

// minSpatialShard bounds how finely the sharded phases split: below ~1k
// agents per worker the goroutine spawn overhead exceeds the per-agent
// work. Purely a scheduling heuristic — output is worker-count-invariant.
const minSpatialShard = 1024

// geometry is the static-dispatch seam between the shared pipeline and a
// concrete topology: bucket layout, neighborhood scan order, and metric.
// The type parameter trick (G's prepare returns G) keeps every call
// monomorphized — no interface dispatch on the per-candidate hot path.
type geometry[G any] interface {
	// prepare returns the geometry instance for a population of n agents
	// (bucket-grid resolution derived from n).
	prepare(n int) G
	// numCells reports the bucket count of the prepared grid.
	numCells() int
	// cell maps a position to its bucket index.
	cell(pt population.Point) int32
	// neighborhood appends the buckets adjacent to c (including c) to buf
	// in the fixed scan order that defines candidate tie-breaking.
	neighborhood(c int32, buf []int32) []int32
	// dist2 is the squared distance between two positions in this metric.
	dist2(a, b population.Point) float64
	// patch draws a position uniformly within distance r of center under
	// this geometry (wrapping or reflecting as the topology demands),
	// consuming src. r ≤ 0 returns center exactly.
	patch(src *prng.Source, center population.Point, r float64) population.Point
}

// spatial is the shared state of a spatial matcher: the bound position
// side-array, the worker count, and the pipeline's reusable buffers.
// Concrete matchers embed it and call bind from their Bind.
type spatial[G geometry[G]] struct {
	geo     G
	workers int
	// pool, when set (SetPool), runs the sharded phases on the engine's
	// persistent worker pool; without one (standalone use) they fall back to
	// spawning per-round goroutines via parallelFor. Same shards either way.
	pool *pool.Pool

	pos *population.Positions
	src *prng.Source
	// probeSrc feeds SampleProbe so measurement probes never perturb the
	// placement stream (src) or the engine's matching stream.
	probeSrc *prng.Source

	// rewrite, when non-nil, may replace agent i's candidate list in the
	// sharded candidate phase (SmallWorld rewiring): it writes up to
	// len(dst) candidate indices into dst and returns how many, or -1 to
	// keep the geometric candidates. It runs concurrently from shards and
	// must be a pure function of (i, n, call) — per-agent randomness comes
	// from counter-based streams, never from a shared Source.
	rewrite func(i, n int, call uint64, dst []int32) int
	// prematch, when non-nil, runs serially at the top of every sample,
	// before the sharded phases — the hook SmallWorld uses to precompute
	// per-round state the concurrent rewrite reads (the rewire-force target
	// list). It must not consume randomness.
	prematch func(n int)
	// calls counts SampleMatch invocations (probe samples count
	// separately, with probeBit set) — the per-round word of the rewrite
	// hook's counter streams.
	calls, probeCalls uint64

	// Pipeline buffers, reused across rounds (1.5× growth slack).
	cellIdx    []int32            // agent -> bucket
	cellStart  []int32            // CSR: bucket c holds cellAgents[cellStart[c]:cellStart[c+1]]
	cellCur    []int32            // scatter cursors
	cellAgents []int32            // bucketed agent indices, ascending within a cell
	posByCell  []population.Point // positions in CSR order — sequential reads in the candidate scan
	cand       []int32            // candK nearest candidates per agent
	candN      []uint8            // stored candidate count per agent
	candTotal  []int32            // total candidates encountered per agent
	order      []int32            // visit permutation
}

// probeBit distinguishes probe-sample rewrite streams from match-sample
// streams so probing can never replay or perturb simulation randomness.
const probeBit = uint64(1) << 63

// bind attaches the position side-array (placement via the given closures)
// and captures the matcher streams. Call exactly once, before the first
// SampleMatch.
func (s *spatial[G]) bind(pop *population.Population, src *prng.Source, place func() population.Point, spawn func(population.Point) population.Point) {
	if s.pos != nil {
		panic("match: spatial matcher bound twice")
	}
	s.src = src
	s.probeSrc = src.Split()
	s.pos = &population.Positions{Place: population.PlaceFunc(place), Spawn: spawn}
	pop.Attach(s.pos)
}

// Positions implements Space: the bound position side-array (nil before
// Bind).
func (s *spatial[G]) Positions() *population.Positions { return s.pos }

// Dist2 implements Space with the geometry's metric. The metric is position-
// only (bucket resolution does not enter it), so it is valid before the
// first SampleMatch.
func (s *spatial[G]) Dist2(a, b population.Point) float64 { return s.geo.dist2(a, b) }

// PatchPoint implements Space: a uniform draw within distance r of center
// under the geometry, from the caller's stream.
func (s *spatial[G]) PatchPoint(center population.Point, r float64, src *prng.Source) population.Point {
	return s.geo.patch(src, center, r)
}

// SetWorkers implements WorkerSetter: it sets the goroutine count of the
// sharded pipeline phases. Output is bit-identical for every worker count;
// the engine wires its own Workers value through at construction.
func (s *spatial[G]) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// SetPool implements PoolSetter: the sharded phases reuse the engine's
// parked workers instead of spawning goroutines every round. Purely a
// throughput setting — shard boundaries and output are unchanged.
func (s *spatial[G]) SetPool(p *pool.Pool) { s.pool = p }

// run executes fn over [0, n) in contiguous shards: on the pool when one is
// attached, else via per-call goroutines (parallelFor), inline when one
// shard suffices.
func (s *spatial[G]) run(n int, fn func(lo, hi int)) {
	if s.pool != nil {
		s.pool.Run(n, minSpatialShard, fn)
		return
	}
	parallelFor(n, s.workers, fn)
}

// SampleMatch implements the Matcher sampling method with sharded
// nearest-available matching over the bound positions, drawing the visit
// order from src.
func (s *spatial[G]) SampleMatch(pop *population.Population, src *prng.Source, p *Pairing) {
	if s.pos == nil {
		panic("match: spatial matcher used before Bind")
	}
	s.calls++
	s.sample(pop.Len(), src, p, s.calls)
}

// SampleProbe draws one matching from a dedicated probe stream split off at
// Bind time. Measurement probes (e.g. color-agreement sampling between
// rounds) use it so they perturb neither the simulation's matching stream
// nor the placement stream: a probed and an unprobed run of the same
// configuration stay on identical trajectories.
func (s *spatial[G]) SampleProbe(pop *population.Population, p *Pairing) {
	if s.pos == nil {
		panic("match: spatial matcher used before Bind")
	}
	s.probeCalls++
	s.sample(pop.Len(), s.probeSrc, p, s.probeCalls|probeBit)
}

// EncodeState implements Stateful: the placement and probe streams, the
// sample counters keying the rewrite hook's counter streams, and the
// position side-array (live positions plus any queued placements). The
// geometry itself and the matcher key are construction-time wiring,
// re-derived identically when the restored matcher is rebuilt and rebound
// from the same configuration and seed.
func (s *spatial[G]) EncodeState(e *wire.Enc) {
	for _, w := range s.src.State() {
		e.U64(w)
	}
	for _, w := range s.probeSrc.State() {
		e.U64(w)
	}
	e.U64(s.calls)
	e.U64(s.probeCalls)
	s.pos.EncodeState(e)
}

// DecodeState implements Stateful; the matcher must already be bound.
func (s *spatial[G]) DecodeState(d *wire.Dec) error {
	if s.pos == nil {
		return errDecodeUnbound
	}
	var st, pst [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	for i := range pst {
		pst[i] = d.U64()
	}
	calls := d.U64()
	probeCalls := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if err := s.pos.DecodeState(d); err != nil {
		return err
	}
	s.src.SetState(st)
	s.probeSrc.SetState(pst)
	s.calls = calls
	s.probeCalls = probeCalls
	return nil
}

// errDecodeUnbound reports DecodeState on an unbound matcher.
var errDecodeUnbound = errors.New("match: DecodeState before Bind")

// ensure sizes the pipeline buffers for n agents over ncells buckets,
// growing with 1.5× slack so a steadily growing population does not
// reallocate every round.
func (s *spatial[G]) ensure(n, ncells int) {
	if cap(s.cellIdx) < n {
		c := n + n/2
		s.cellIdx = make([]int32, c)
		s.cellAgents = make([]int32, c)
		s.posByCell = make([]population.Point, c)
		s.cand = make([]int32, candK*c)
		s.candN = make([]uint8, c)
		s.candTotal = make([]int32, c)
		s.order = make([]int32, c)
	}
	if cap(s.cellStart) < ncells+1 {
		c := ncells + 1 + ncells/2
		s.cellStart = make([]int32, c)
		s.cellCur = make([]int32, c)
	}
	s.cellIdx = s.cellIdx[:n]
	s.cellAgents = s.cellAgents[:n]
	s.posByCell = s.posByCell[:n]
	s.cand = s.cand[:candK*n]
	s.candN = s.candN[:n]
	s.candTotal = s.candTotal[:n]
	s.order = s.order[:n]
	s.cellStart = s.cellStart[:ncells+1]
	s.cellCur = s.cellCur[:ncells]
}

// sample runs the four-phase pipeline documented at the top of this file.
func (s *spatial[G]) sample(n int, src *prng.Source, p *Pairing, call uint64) {
	p.Reset(n)
	if n < 2 {
		return
	}
	if s.prematch != nil {
		s.prematch(n)
	}
	pos := s.pos.Slice()
	g := s.geo.prepare(n)
	ncells := g.numCells()
	s.ensure(n, ncells)
	workers := s.workers
	if workers < 1 {
		workers = 1
	}

	// Phase 1 (sharded): bucket every agent.
	s.run(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.cellIdx[i] = g.cell(pos[i])
		}
	})

	// Phase 2 (serial): stable counting-sort scatter into the CSR index.
	// Ascending agent order within each cell is part of the tie-breaking
	// contract, so the scatter stays serial (cheap integer passes).
	start := s.cellStart
	for i := range start {
		start[i] = 0
	}
	for _, c := range s.cellIdx {
		start[c+1]++
	}
	for c := 0; c < ncells; c++ {
		start[c+1] += start[c]
	}
	s.scatter(pos, ncells, workers)

	// Phase 3 (sharded): per-agent candK-nearest candidate selection,
	// iterated in CSR order so agents of the same cell reuse each other's
	// cached neighborhood rows, scanning the cell-sorted position copy
	// (posByCell) in contiguous segments instead of gathering pos[] at
	// random. The scan ORDER over candidates is unchanged — segments are
	// maximal runs of consecutive cell ids in the geometry's neighborhood
	// order — so tie-breaking (and the output) is bit-identical to the
	// per-agent form.
	rewrite := s.rewrite
	s.run(n, func(lo, hi int) {
		var nbuf [maxNbrCells]int32
		var segs [maxNbrCells][2]int32
		// Locate the cell containing CSR slot lo.
		c := int32(0)
		{
			hiC, loC := int32(ncells), int32(0)
			for loC < hiC {
				mid := (loC + hiC) / 2
				if s.cellStart[mid+1] > int32(lo) {
					hiC = mid
				} else {
					loC = mid + 1
				}
			}
			c = loC
		}
		nseg := -1 // neighborhood segments of cell c not yet computed
		for k := lo; k < hi; k++ {
			for int32(k) >= s.cellStart[c+1] {
				c++
				nseg = -1
			}
			i := int(s.cellAgents[k])
			if rewrite != nil {
				if kn := rewrite(i, n, call, s.cand[i*candK:(i+1)*candK]); kn >= 0 {
					s.candN[i] = uint8(kn)
					s.candTotal[i] = int32(kn)
					continue
				}
			}
			if nseg < 0 {
				cells := g.neighborhood(c, nbuf[:0])
				nseg = 0
				for si := 0; si < len(cells); {
					sj := si + 1
					for sj < len(cells) && cells[sj] == cells[sj-1]+1 {
						sj++
					}
					segs[nseg] = [2]int32{s.cellStart[cells[si]], s.cellStart[cells[sj-1]+1]}
					nseg++
					si = sj
				}
			}
			s.nearestCandidates(g, i, k, segs[:nseg])
		}
	})

	// Phase 4 (serial walk): random-order greedy matching. The visit
	// permutation's identity fill shards (pure per-index writes); the
	// Fisher–Yates shuffle then consumes exactly the variates
	// src.PermInt32Into would — PermInt32Into IS identity-fill + Shuffle —
	// so the order, and the walk, are bit-identical to the historical form.
	s.run(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.order[i] = int32(i)
		}
	})
	src.Shuffle(n, func(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] })
	var nbuf [maxNbrCells]int32
	for _, oi := range s.order {
		i := int(oi)
		if p.Nbr[i] != Unmatched {
			continue
		}
		best := int32(-1)
		stored := int(s.candN[i])
		for k := 0; k < stored; k++ {
			if j := s.cand[i*candK+k]; p.Nbr[j] == Unmatched {
				best = j
				break
			}
		}
		if best < 0 && int(s.candTotal[i]) > stored {
			// All stored candidates were taken but the neighborhood holds
			// more: exact fallback rescan (same metric, same tie-break).
			best = s.rescan(g, pos, p, i, nbuf[:0])
		}
		if best >= 0 {
			p.Nbr[i] = best
			p.Nbr[best] = int32(i)
		}
	}
}

// maxScatterShards caps the parallel scatter's fan-out (each shard scans
// the full cellIdx array, so extra shards past the memory bandwidth add
// nothing).
const maxScatterShards = 16

// scatter fills cellAgents/posByCell with the stable counting-sort layout:
// within each cell, agents appear in ascending index order. With one
// worker it is the classic serial cursor scatter. With more, cells are
// partitioned into contiguous ranges of roughly equal agent mass and each
// worker scans the full cellIdx array but scatters only the agents of its
// own cell range — every worker does the identical ascending-i walk, so
// the layout (and therefore everything downstream) is bit-identical to the
// serial scatter, and no two workers touch the same cursor or output slot.
func (s *spatial[G]) scatter(pos []population.Point, ncells, workers int) {
	n := len(s.cellIdx)
	copy(s.cellCur, s.cellStart[:ncells])
	w := workers
	if s.pool != nil {
		w = s.pool.Shards(n, minSpatialShard)
	} else if lim := n / minSpatialShard; w > lim {
		w = lim
	}
	if w > maxScatterShards {
		w = maxScatterShards
	}
	if w <= 1 {
		for i, c := range s.cellIdx {
			at := s.cellCur[c]
			s.cellAgents[at] = int32(i)
			s.posByCell[at] = pos[i]
			s.cellCur[c]++
		}
		return
	}
	// Partition cells at equal-agent-mass boundaries (binary search on the
	// CSR prefix sums).
	var bounds [maxScatterShards + 1]int32
	bounds[w] = int32(ncells)
	for k := 1; k < w; k++ {
		target := int32(k * n / w)
		lo, hi := int32(0), int32(ncells)
		for lo < hi {
			mid := (lo + hi) / 2
			if s.cellStart[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bounds[k] = lo
	}
	shard := func(k int) {
		cLo, cHi := bounds[k], bounds[k+1]
		for i, c := range s.cellIdx {
			if c < cLo || c >= cHi {
				continue
			}
			at := s.cellCur[c]
			s.cellAgents[at] = int32(i)
			s.posByCell[at] = pos[i]
			s.cellCur[c]++
		}
	}
	if s.pool != nil {
		s.pool.RunN(w, shard)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			shard(k)
		}(k)
	}
	wg.Wait()
}

// nearestCandidates fills agent i's candidate slots with its candK nearest
// neighbors in (distance, scan order) — the prefix of the full stable
// ordering — via a bounded stable insertion sort over the neighborhood
// segments. selfK is agent i's own CSR slot (skipped); segs are [start,
// end) ranges of posByCell/cellAgents covering the neighborhood in exact
// scan order.
func (s *spatial[G]) nearestCandidates(g G, i, selfK int, segs [][2]int32) {
	var bd [candK]float64
	base := i * candK
	stored, total := 0, 0
	pi := s.posByCell[selfK]
	for _, sg := range segs {
		for k2 := sg[0]; k2 < sg[1]; k2++ {
			if int(k2) == selfK {
				continue
			}
			total++
			d := g.dist2(pi, s.posByCell[k2])
			if stored == candK && d >= bd[candK-1] {
				continue
			}
			// Insertion point: after every stored candidate with distance
			// ≤ d, so equal distances keep scan order (stability).
			at := stored
			for at > 0 && d < bd[at-1] {
				at--
			}
			if stored < candK {
				stored++
			}
			for m := stored - 1; m > at; m-- {
				bd[m] = bd[m-1]
				s.cand[base+m] = s.cand[base+m-1]
			}
			bd[at] = d
			s.cand[base+at] = s.cellAgents[k2]
		}
	}
	s.candN[i] = uint8(stored)
	s.candTotal[i] = int32(total)
}

// rescan is the exact nearest-unmatched search over agent i's neighborhood:
// the historical serial algorithm, used only when the precomputed candidate
// prefix is exhausted.
func (s *spatial[G]) rescan(g G, pos []population.Point, p *Pairing, i int, nbuf []int32) int32 {
	best := int32(-1)
	bestD := math.Inf(1)
	for _, c := range g.neighborhood(s.cellIdx[i], nbuf) {
		for _, j := range s.cellAgents[s.cellStart[c]:s.cellStart[c+1]] {
			if int(j) == i || p.Nbr[j] != Unmatched {
				continue
			}
			if d := g.dist2(pos[i], pos[j]); d < bestD {
				bestD = d
				best = j
			}
		}
	}
	return best
}

// parallelFor runs fn over up to `workers` contiguous shards of [0, n),
// inline on the caller's goroutine when one shard suffices. Shard
// boundaries are invisible to callers whose fn is a pure per-index
// function.
func parallelFor(n, workers int, fn func(lo, hi int)) {
	w := workers
	if lim := n / minSpatialShard; w > lim {
		w = lim
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(k*n/w, (k+1)*n/w)
	}
	wg.Wait()
}

// gaussianOffset draws a 2-D Gaussian offset of standard deviation sigma
// via Box-Muller from two uniforms of src — the daughter-placement kernel
// shared by the spatial matchers.
func gaussianOffset(src *prng.Source, sigma float64) (dx, dy float64) {
	u1 := src.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := src.Float64()
	r := sigma * math.Sqrt(-2*math.Log(u1))
	return r * math.Cos(2*math.Pi*u2), r * math.Sin(2*math.Pi*u2)
}
