package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestSeriesAddLen(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	x, y := s.Last()
	if x != 2 || y != 20 {
		t.Errorf("Last = %v,%v", x, y)
	}
}

func TestSeriesLastEmpty(t *testing.T) {
	var s Series
	if x, y := s.Last(); x != 0 || y != 0 {
		t.Error("empty Last must be zeros")
	}
}

func TestDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	d := s.Downsample(3)
	// Keeps 0, 3, 6, 9 — and 9 is the final point, already included.
	wantXs := []float64{0, 3, 6, 9}
	if len(d.Xs) != len(wantXs) {
		t.Fatalf("downsampled to %v", d.Xs)
	}
	for i, want := range wantXs {
		if d.Xs[i] != want {
			t.Errorf("point %d x = %v, want %v", i, d.Xs[i], want)
		}
	}
}

func TestDownsampleIncludesFinal(t *testing.T) {
	var s Series
	for i := 0; i < 11; i++ {
		s.Add(float64(i), 0)
	}
	d := s.Downsample(4)
	// 0, 4, 8 then final 10 appended.
	if got := d.Xs[len(d.Xs)-1]; got != 10 {
		t.Errorf("final point %v, want 10", got)
	}
}

func TestDownsampleIdentity(t *testing.T) {
	var s Series
	s.Add(1, 2)
	d := s.Downsample(1)
	if d.Len() != 1 || d.Xs[0] != 1 {
		t.Errorf("identity downsample changed series: %+v", d)
	}
	// Must be a copy.
	d.Xs[0] = 99
	if s.Xs[0] == 99 {
		t.Error("Downsample shares storage")
	}
}

func TestMinMaxY(t *testing.T) {
	var s Series
	if lo, hi := s.MinMaxY(); lo != 0 || hi != 0 {
		t.Error("empty MinMaxY")
	}
	s.Add(0, 5)
	s.Add(1, -2)
	s.Add(2, 9)
	lo, hi := s.MinMaxY()
	if lo != -2 || hi != 9 {
		t.Errorf("MinMaxY = %v,%v", lo, hi)
	}
}

func TestRecorderOrderStable(t *testing.T) {
	r := NewRecorder()
	r.Record("b", 0, 1)
	r.Record("a", 0, 2)
	r.Record("b", 1, 3)
	names := r.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("Names = %v", names)
	}
	if r.Series("b").Len() != 2 {
		t.Error("series b points lost")
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Record("pop", 0, 4096)
	r.Record("pop", 1, 4100)
	r.Record("active", 0, 512)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "series" {
		t.Error("missing header")
	}
	if rows[1][0] != "pop" || rows[1][2] != "4096" {
		t.Errorf("row 1 = %v", rows[1])
	}
	if rows[3][0] != "active" {
		t.Errorf("row 3 = %v", rows[3])
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRecorder()
	r.Record("pop", 0, 1)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []Series
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Name != "pop" || len(out[0].Ys) != 1 {
		t.Errorf("decoded %+v", out)
	}
	if !strings.Contains(buf.String(), `"name"`) {
		t.Error("JSON field tags missing")
	}
}
