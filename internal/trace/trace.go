// Package trace records time series from simulations and exports them as
// CSV or JSON for the experiment harness and the plotting-friendly outputs
// of cmd/popsim and examples/sweep.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Series is one named sequence of (x, y) points, e.g. population size per
// round.
type Series struct {
	// Name labels the series in exports.
	Name string `json:"name"`
	// Xs and Ys are the coordinates; always equal length.
	Xs []float64 `json:"xs"`
	Ys []float64 `json:"ys"`
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.Xs) }

// Last returns the final point, or zeros for an empty series.
func (s *Series) Last() (x, y float64) {
	if len(s.Xs) == 0 {
		return 0, 0
	}
	return s.Xs[len(s.Xs)-1], s.Ys[len(s.Ys)-1]
}

// Downsample returns a copy keeping every kth point (k ≥ 1), always
// including the final point. Long round-level traces are downsampled before
// export.
func (s *Series) Downsample(k int) *Series {
	if k <= 1 || s.Len() == 0 {
		cp := &Series{Name: s.Name, Xs: append([]float64(nil), s.Xs...), Ys: append([]float64(nil), s.Ys...)}
		return cp
	}
	out := &Series{Name: s.Name}
	for i := 0; i < s.Len(); i += k {
		out.Add(s.Xs[i], s.Ys[i])
	}
	if last := s.Len() - 1; last%k != 0 {
		out.Add(s.Xs[last], s.Ys[last])
	}
	return out
}

// MinMaxY reports the extremes of Y, or zeros for an empty series.
func (s *Series) MinMaxY() (lo, hi float64) {
	if s.Len() == 0 {
		return 0, 0
	}
	lo, hi = s.Ys[0], s.Ys[0]
	for _, y := range s.Ys[1:] {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	return lo, hi
}

// Recorder collects a set of series keyed by name, preserving insertion
// order for stable exports.
type Recorder struct {
	order  []string
	series map[string]*Series
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Series returns (creating if needed) the series with the given name.
func (r *Recorder) Series(name string) *Series {
	if s, ok := r.series[name]; ok {
		return s
	}
	s := &Series{Name: name}
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

// Record appends a point to the named series.
func (r *Recorder) Record(name string, x, y float64) {
	r.Series(name).Add(x, y)
}

// Names lists the recorded series in insertion order.
func (r *Recorder) Names() []string {
	return append([]string(nil), r.order...)
}

// WriteCSV emits all series in long format: series,x,y.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, name := range r.order {
		s := r.series[name]
		for i := range s.Xs {
			rec := []string{
				name,
				strconv.FormatFloat(s.Xs[i], 'g', -1, 64),
				strconv.FormatFloat(s.Ys[i], 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: write row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits all series as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	out := make([]*Series, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.series[name])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
