// Package obs is the shared observability plane: a zero-dependency metrics
// registry with Prometheus text-format exposition, and lightweight in-memory
// request tracing (trace.go). Engine, serve, and cluster all instrument
// against this package; nothing here imports anything above the standard
// library, so it is safe at every layer including the sharded round loops.
//
// Hot-path cost is one atomic op per counter increment and a binary search
// plus two atomic ops per histogram observation; exposition walks the
// registry under a mutex but never blocks writers.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Stored as float64 bits; Set is
// a plain store, Add is a CAS loop.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reports the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative on
// exposition, per-bucket internally). Observe is safe from any number of
// goroutines: one binary search, one atomic bucket increment, one CAS loop
// for the sum.
type Histogram struct {
	// uppers are the inclusive upper bounds, sorted ascending; the +Inf
	// bucket is implicit as counts[len(uppers)].
	uppers  []float64
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefBuckets are latency buckets in seconds, spanning 100µs to 10s — wide
// enough for both a 30µs quantum on a small session (first bucket) and a
// multi-second snapshot of a 2²⁴ population (last).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metricKind tags a family's exposition TYPE.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// sample is one labeled metric within a family.
type sample struct {
	labels  []string // alternating key, value
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family is all samples sharing a metric name; HELP/TYPE are emitted once
// per family.
type family struct {
	name    string
	help    string
	kind    metricKind
	order   []string // label signatures in registration order
	samples map[string]*sample
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
// Registration is idempotent: asking twice for the same name+labels returns
// the same metric. Registering the same name with a different kind panics —
// that is a programming error, not runtime input.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // family names in sorted order, maintained on insert
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnCollect registers fn to run at the start of every WritePrometheus call,
// before the registry lock is taken. Use it to refresh gauges whose source
// of truth lives elsewhere (e.g. per-worker fleet state).
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// Counter returns the counter registered under name and labels (alternating
// key, value pairs), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.register(name, help, kindCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time. Re-registering the same name+labels replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.register(name, help, kindGauge, labels)
	s.gaugeFn = fn
}

// Histogram returns the histogram registered under name and labels with the
// given bucket upper bounds (sorted copies are taken; +Inf is implicit),
// creating it on first use. Buckets must be non-empty.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket")
	}
	s := r.register(name, help, kindHistogram, labels)
	if s.hist == nil {
		up := append([]float64(nil), buckets...)
		sort.Float64s(up)
		s.hist = &Histogram{uppers: up, counts: make([]atomic.Uint64, len(up)+1)}
	}
	return s.hist
}

// Unregister removes the metric under name+labels; when the family empties
// it disappears from exposition. Removing a metric that was never
// registered is a no-op.
func (r *Registry) Unregister(name string, labels ...string) {
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return
	}
	if _, ok := f.samples[sig]; !ok {
		return
	}
	delete(f.samples, sig)
	for i, s := range f.order {
		if s == sig {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	if len(f.samples) == 0 {
		delete(r.families, name)
		for i, n := range r.names {
			if n == name {
				r.names = append(r.names[:i], r.names[i+1:]...)
				break
			}
		}
	}
}

func (r *Registry) register(name, help string, kind metricKind, labels []string) *sample {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list for " + name)
	}
	for i := 0; i < len(labels); i += 2 {
		if !validName(labels[i]) {
			panic("obs: invalid label name " + strconv.Quote(labels[i]) + " on " + name)
		}
	}
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, samples: make(map[string]*sample)}
		r.families[name] = f
		i := sort.SearchStrings(r.names, name)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = name
	} else if f.kind != kind {
		panic("obs: metric " + name + " re-registered as " + kind.String() + ", was " + f.kind.String())
	}
	s := f.samples[sig]
	if s == nil {
		s = &sample{labels: append([]string(nil), labels...)}
		f.samples[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// WritePrometheus renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, HELP and TYPE once each, then
// one line per sample (histograms expand to cumulative le buckets plus _sum
// and _count).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.names {
		f := r.families[name]
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, sig := range f.order {
			s := f.samples[sig]
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, "", s.labels, "", "", formatFloat(float64(s.counter.Value())))
			case kindGauge:
				v := 0.0
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				} else {
					v = s.gauge.Value()
				}
				writeSample(&b, f.name, "", s.labels, "", "", formatFloat(v))
			case kindHistogram:
				h := s.hist
				var cum uint64
				for i, up := range h.uppers {
					cum += h.counts[i].Load()
					writeSample(&b, f.name, "_bucket", s.labels, "le", formatFloat(up), strconv.FormatUint(cum, 10))
				}
				cum += h.counts[len(h.uppers)].Load()
				writeSample(&b, f.name, "_bucket", s.labels, "le", "+Inf", strconv.FormatUint(cum, 10))
				writeSample(&b, f.name, "_sum", s.labels, "", "", formatFloat(h.Sum()))
				writeSample(&b, f.name, "_count", s.labels, "", "", strconv.FormatUint(cum, 10))
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSample emits one exposition line: name+suffix, the sample's labels
// plus an optional extra label (the histogram le), and the value.
func writeSample(b *strings.Builder, name, suffix string, labels []string, extraKey, extraVal, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 || extraKey != "" {
		b.WriteByte('{')
		first := true
		for i := 0; i+1 < len(labels); i += 2 {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(labels[i])
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labels[i+1]))
			b.WriteByte('"')
		}
		if extraKey != "" {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(extraKey)
			b.WriteString(`="`)
			b.WriteString(extraVal)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// labelSig is the canonical identity of a label set within a family.
func labelSig(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		b.WriteString(labels[i])
		b.WriteByte('\x00')
		b.WriteString(labels[i+1])
		b.WriteByte('\x00')
	}
	return b.String()
}

// validName reports whether s is a legal Prometheus metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
