package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// TraceHeader carries the trace ID across the coordinator→worker proxy hop
// (and lets clients supply their own). Propagation is header-only by design:
// the /v1 wire types stay observability-free, so snapshots and stats remain
// bit-identical with tracing on or off.
const TraceHeader = "X-Popstab-Trace"

// NewTraceID mints a 16-hex-character random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// recognizable constant rather than crash an observability path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s is acceptable as an incoming trace ID:
// 1–64 hex characters. Anything else (log-injection attempts, garbage) is
// discarded and a fresh ID minted instead.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for _, c := range s {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			return false
		}
	}
	return true
}

type traceKey struct{}

// WithTrace returns ctx carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID extracts the trace ID from ctx, or "" when none is attached.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// Span is one recorded operation within a trace.
type Span struct {
	Trace string `json:"trace"`
	// Service names the process that recorded the span (e.g. "worker",
	// "coordinator"), so merged fleet traces stay readable.
	Service    string            `json:"service"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Tracer is a bounded in-memory span store: spans keyed by trace ID, oldest
// traces evicted FIFO, spans per trace capped so a long stream cannot grow a
// trace without bound. All methods are safe on a nil *Tracer (no-ops), so
// instrumented code never needs nil checks.
type Tracer struct {
	mu        sync.Mutex
	service   string
	traces    map[string][]Span
	order     []string
	maxTraces int
	maxSpans  int
}

// NewTracer returns a tracer that keeps up to maxTraces traces of up to
// maxSpans spans each; zero or negative arguments select defaults (256
// traces × 256 spans).
func NewTracer(service string, maxTraces, maxSpans int) *Tracer {
	if maxTraces <= 0 {
		maxTraces = 256
	}
	if maxSpans <= 0 {
		maxSpans = 256
	}
	return &Tracer{
		service:   service,
		traces:    make(map[string][]Span),
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
	}
}

// Service reports the tracer's service name ("" on nil).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Record stores one finished span. Attrs are alternating key, value pairs.
// No-op when t is nil or traceID is empty.
func (t *Tracer) Record(traceID, name string, start time.Time, d time.Duration, attrs ...string) {
	if t == nil || traceID == "" {
		return
	}
	sp := Span{
		Trace:      traceID,
		Service:    t.service,
		Name:       name,
		Start:      start.UTC(),
		DurationMS: float64(d.Nanoseconds()) / 1e6,
	}
	if len(attrs) >= 2 {
		sp.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			sp.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	spans, known := t.traces[traceID]
	if !known {
		if len(t.order) >= t.maxTraces {
			evict := t.order[0]
			t.order = t.order[1:]
			delete(t.traces, evict)
		}
		t.order = append(t.order, traceID)
	}
	if len(spans) < t.maxSpans {
		t.traces[traceID] = append(spans, sp)
	} else if !known {
		t.traces[traceID] = spans
	}
}

// Start begins a span and returns its finish function; call it (optionally
// with alternating attr key, value pairs) to record the span. Safe on nil.
func (t *Tracer) Start(traceID, name string) func(attrs ...string) {
	if t == nil || traceID == "" {
		return func(...string) {}
	}
	start := time.Now()
	return func(attrs ...string) {
		t.Record(traceID, name, start, time.Since(start), attrs...)
	}
}

// Spans returns a copy of the spans recorded for traceID (nil when the
// trace is unknown or t is nil).
func (t *Tracer) Spans(traceID string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := t.traces[traceID]
	if spans == nil {
		return nil
	}
	return append([]Span(nil), spans...)
}

// Len reports the number of live traces (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// statusWriter captures the response status for the access log while
// passing Flush through — SSE streaming must keep working under the
// middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps next with the observability plane's HTTP instrumentation:
// extract (or mint) the trace ID from TraceHeader, attach it to the request
// context and the response header, record an "http" span on t, and emit one
// slog access-log line carrying the trace ID — the line the fleet smoke
// greps to correlate coordinator and worker logs.
func Middleware(t *Tracer, logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(TraceHeader)
		if !ValidTraceID(id) {
			id = NewTraceID()
		}
		w.Header().Set(TraceHeader, id)
		r = r.WithContext(WithTrace(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		route := r.Pattern
		if route == "" {
			route = r.Method + " " + r.URL.Path
		}
		t.Record(id, "http", start, elapsed,
			"route", route, "status", http.StatusText(status))
		logger.Info("http",
			"trace", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"dur_ms", float64(elapsed.Nanoseconds())/1e6,
		)
	})
}
