package obs

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceIDMintAndValidate(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatal("two minted IDs collided")
	}
	if !ValidTraceID(a) || len(a) != 16 {
		t.Fatalf("minted ID %q invalid", a)
	}
	for _, bad := range []string{"", "xyz!", strings.Repeat("a", 65), "DEAD BEEF", "line\nbreak"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true", bad)
		}
	}
	for _, good := range []string{"a", "DEADbeef01", strings.Repeat("f", 64)} {
		if !ValidTraceID(good) {
			t.Errorf("ValidTraceID(%q) = false", good)
		}
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("empty context must carry no trace")
	}
	ctx = WithTrace(ctx, "abc123")
	if TraceID(ctx) != "abc123" {
		t.Fatalf("TraceID = %q", TraceID(ctx))
	}
}

func TestTracerRecordAndSpans(t *testing.T) {
	tr := NewTracer("worker", 4, 8)
	end := tr.Start("t1", "run")
	end("session", "s-1")
	tr.Record("t1", "snapshot", time.Now(), 3*time.Millisecond)
	spans := tr.Spans("t1")
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "run" || spans[0].Service != "worker" || spans[0].Attrs["session"] != "s-1" {
		t.Fatalf("span[0] = %+v", spans[0])
	}
	if spans[1].DurationMS < 2.9 {
		t.Fatalf("duration_ms = %v", spans[1].DurationMS)
	}
	if tr.Spans("missing") != nil {
		t.Error("unknown trace must return nil")
	}
}

func TestTracerBounds(t *testing.T) {
	tr := NewTracer("x", 2, 3)
	for i := 0; i < 5; i++ {
		tr.Record(fmt.Sprintf("trace-%d", i), "op", time.Now(), time.Millisecond)
	}
	if tr.Len() != 2 {
		t.Fatalf("live traces = %d, want 2 (FIFO eviction)", tr.Len())
	}
	if tr.Spans("trace-0") != nil || tr.Spans("trace-4") == nil {
		t.Error("eviction must drop oldest traces first")
	}
	for i := 0; i < 10; i++ {
		tr.Record("trace-4", "op", time.Now(), time.Millisecond)
	}
	if got := len(tr.Spans("trace-4")); got != 3 {
		t.Fatalf("spans capped at %d, want 3", got)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Record("t", "op", time.Now(), time.Second)
	tr.Start("t", "op")("k", "v")
	if tr.Spans("t") != nil || tr.Len() != 0 || tr.Service() != "" {
		t.Fatal("nil tracer must be inert")
	}
}

func TestMiddlewareMintsAndPropagates(t *testing.T) {
	tr := NewTracer("svc", 16, 16)
	var logs strings.Builder
	logger := slog.New(slog.NewTextHandler(&logs, nil))
	var seen string
	h := Middleware(tr, logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = TraceID(r.Context())
	}))

	// No incoming header: an ID is minted, echoed, and logged.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	echoed := rec.Header().Get(TraceHeader)
	if echoed == "" || echoed != seen {
		t.Fatalf("echoed %q, handler saw %q", echoed, seen)
	}
	if !strings.Contains(logs.String(), "trace="+echoed) {
		t.Fatalf("access log missing trace ID:\n%s", logs.String())
	}
	if len(tr.Spans(echoed)) != 1 {
		t.Fatalf("middleware span count = %d", len(tr.Spans(echoed)))
	}

	// Incoming valid header: preserved end to end.
	req := httptest.NewRequest("POST", "/v1/sims", nil)
	req.Header.Set(TraceHeader, "feedc0de12345678")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "feedc0de12345678" || rec.Header().Get(TraceHeader) != seen {
		t.Fatalf("incoming trace not propagated: saw %q", seen)
	}

	// Invalid header: replaced with a fresh mint.
	req = httptest.NewRequest("GET", "/", nil)
	req.Header.Set(TraceHeader, "not hex!")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen == "not hex!" || !ValidTraceID(seen) {
		t.Fatalf("invalid trace accepted: %q", seen)
	}
}
