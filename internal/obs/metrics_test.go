package obs

import (
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parsedSample is one non-comment exposition line, decomposed.
type parsedSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition is a strict parser for the Prometheus text format subset
// the registry emits. It fails the test on any malformed line, HELP/TYPE
// appearing after samples of the same family, duplicate HELP/TYPE, or an
// unknown TYPE keyword, and returns the samples plus family→type map.
func parseExposition(t *testing.T, text string) ([]parsedSample, map[string]string) {
	t.Helper()
	var samples []parsedSample
	types := make(map[string]string)
	help := make(map[string]string)
	seenSample := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			keyword, fam := parts[1], parts[2]
			if !validName(fam) {
				t.Fatalf("line %d: invalid family name %q", ln+1, fam)
			}
			if seenSample[fam] {
				t.Fatalf("line %d: %s for %s after its samples", ln+1, keyword, fam)
			}
			switch keyword {
			case "HELP":
				if _, dup := help[fam]; dup {
					t.Fatalf("line %d: duplicate HELP for %s", ln+1, fam)
				}
				help[fam] = parts[3]
			case "TYPE":
				if _, dup := types[fam]; dup {
					t.Fatalf("line %d: duplicate TYPE for %s", ln+1, fam)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Fatalf("line %d: unknown TYPE %q", ln+1, parts[3])
				}
				types[fam] = parts[3]
			default:
				t.Fatalf("line %d: unknown comment keyword %q", ln+1, keyword)
			}
			continue
		}
		s := parseSampleLine(t, ln+1, line)
		fam := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s.name, "_bucket"), "_sum"), "_count")
		if types[fam] == "" && types[s.name] == "" {
			t.Fatalf("line %d: sample %q before TYPE", ln+1, s.name)
		}
		if types[fam] != "" {
			seenSample[fam] = true
		} else {
			seenSample[s.name] = true
		}
		samples = append(samples, s)
	}
	return samples, types
}

// parseSampleLine decomposes `name{k="v",...} value`.
func parseSampleLine(t *testing.T, ln int, line string) parsedSample {
	t.Helper()
	s := parsedSample{labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if space < 0 {
		t.Fatalf("line %d: no value separator in %q", ln, line)
	}
	if brace >= 0 && brace < space {
		s.name = rest[:brace]
		close := strings.LastIndexByte(rest, '}')
		if close < brace {
			t.Fatalf("line %d: unterminated label set in %q", ln, line)
		}
		labelText := rest[brace+1 : close]
		rest = rest[close+1:]
		for len(labelText) > 0 {
			eq := strings.IndexByte(labelText, '=')
			if eq < 0 || eq+1 >= len(labelText) || labelText[eq+1] != '"' {
				t.Fatalf("line %d: malformed label in %q", ln, line)
			}
			key := labelText[:eq]
			if !validName(key) {
				t.Fatalf("line %d: invalid label name %q", ln, key)
			}
			// Scan the quoted value honoring escapes.
			var val strings.Builder
			i := eq + 2
			for {
				if i >= len(labelText) {
					t.Fatalf("line %d: unterminated label value in %q", ln, line)
				}
				c := labelText[i]
				if c == '\\' {
					if i+1 >= len(labelText) {
						t.Fatalf("line %d: dangling escape in %q", ln, line)
					}
					switch labelText[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: bad escape \\%c in %q", ln, labelText[i+1], line)
					}
					i += 2
					continue
				}
				if c == '"' {
					i++
					break
				}
				val.WriteByte(c)
				i++
			}
			s.labels[key] = val.String()
			if i < len(labelText) {
				if labelText[i] != ',' {
					t.Fatalf("line %d: expected , between labels in %q", ln, line)
				}
				i++
			}
			labelText = labelText[i:]
		}
	} else {
		s.name = rest[:space]
		rest = rest[space:]
	}
	valText := strings.TrimSpace(rest)
	var v float64
	switch valText {
	case "+Inf":
		v = math.Inf(1)
	case "-Inf":
		v = math.Inf(-1)
	case "NaN":
		v = math.NaN()
	default:
		var err error
		v, err = strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln, valText, err)
		}
	}
	if !validName(s.name) {
		t.Fatalf("line %d: invalid sample name %q", ln, s.name)
	}
	s.value = v
	return s
}

func scrape(t *testing.T, r *Registry) ([]parsedSample, map[string]string) {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return parseExposition(t, b.String())
}

func TestExpositionCountersGaugesAndEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("popstab_requests_total", "Requests with \\ and\nnewline in help.")
	c.Add(7)
	g := r.Gauge("popstab_temp", "A gauge.", "shard", `quo"te\back`+"\nnl")
	g.Set(-2.5)
	r.GaugeFunc("popstab_live", "Live value.", func() float64 { return 42 })

	samples, types := scrape(t, r)
	if types["popstab_requests_total"] != "counter" || types["popstab_temp"] != "gauge" || types["popstab_live"] != "gauge" {
		t.Fatalf("types = %v", types)
	}
	byName := map[string]parsedSample{}
	for _, s := range samples {
		byName[s.name] = s
	}
	if v := byName["popstab_requests_total"].value; v != 7 {
		t.Errorf("counter = %v, want 7", v)
	}
	if v := byName["popstab_live"].value; v != 42 {
		t.Errorf("gauge func = %v, want 42", v)
	}
	gs := byName["popstab_temp"]
	if gs.value != -2.5 {
		t.Errorf("gauge = %v, want -2.5", gs.value)
	}
	// The escaped label value must round-trip through the parser.
	if got := gs.labels["shard"]; got != `quo"te\back`+"\nnl" {
		t.Errorf("label round-trip = %q", got)
	}
}

func TestExpositionHistogramMonotoneBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("popstab_lat_seconds", "Latency.", []float64{0.01, 0.1, 1}, "phase", "step")
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 2, 2, 2} {
		h.Observe(v)
	}
	samples, types := scrape(t, r)
	if types["popstab_lat_seconds"] != "histogram" {
		t.Fatalf("types = %v", types)
	}
	var buckets []parsedSample
	var sum, count float64
	haveSum, haveCount := false, false
	for _, s := range samples {
		switch s.name {
		case "popstab_lat_seconds_bucket":
			if s.labels["phase"] != "step" {
				t.Errorf("bucket lost its labels: %v", s.labels)
			}
			buckets = append(buckets, s)
		case "popstab_lat_seconds_sum":
			sum, haveSum = s.value, true
		case "popstab_lat_seconds_count":
			count, haveCount = s.value, true
		}
	}
	if !haveSum || !haveCount {
		t.Fatal("missing _sum or _count")
	}
	if len(buckets) != 4 {
		t.Fatalf("bucket lines = %d, want 4 (3 bounds + +Inf)", len(buckets))
	}
	// Cumulative counts must be monotone non-decreasing in le order, and
	// the +Inf bucket must equal _count.
	wantCum := []float64{1, 3, 4, 7}
	prevLE := math.Inf(-1)
	for i, b := range buckets {
		le := b.labels["le"]
		var bound float64
		if le == "+Inf" {
			bound = math.Inf(1)
		} else {
			var err error
			bound, err = strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", le, err)
			}
		}
		if bound <= prevLE {
			t.Fatalf("le bounds not increasing: %v after %v", bound, prevLE)
		}
		prevLE = bound
		if b.value != wantCum[i] {
			t.Errorf("bucket le=%s = %v, want %v", le, b.value, wantCum[i])
		}
		if i > 0 && b.value < buckets[i-1].value {
			t.Errorf("bucket counts not monotone at le=%s", le)
		}
	}
	if !math.IsInf(prevLE, 1) {
		t.Error("last bucket must be le=+Inf")
	}
	if count != 7 || buckets[3].value != count {
		t.Errorf("count = %v, +Inf bucket = %v, want 7", count, buckets[3].value)
	}
	if want := 0.005 + 0.05 + 0.05 + 0.5 + 6; math.Abs(sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("popstab_hot_seconds", "Hammered histogram.", DefBuckets)
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 20000
	var wg sync.WaitGroup
	// Hammer one histogram from GOMAXPROCS goroutines while a scraper
	// renders concurrently; under -race this is the data-race gate, and
	// the final totals check the atomics never dropped an observation.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Errorf("concurrent scrape: %v", err)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	wantCount := uint64(workers * perWorker)
	if got := h.Count(); got != wantCount {
		t.Fatalf("count = %d, want %d", got, wantCount)
	}
	var wantSum float64
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i%100) / 1000
	}
	wantSum *= float64(workers)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	// The final scrape must parse and agree with the totals.
	samples, _ := scrape(t, r)
	for _, s := range samples {
		if s.name == "popstab_hot_seconds_count" && s.value != float64(wantCount) {
			t.Errorf("exposed count = %v, want %d", s.value, wantCount)
		}
	}
}

func TestRegistryIdempotentAndSorted(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("zeta_total", "z")
	b := r.Counter("zeta_total", "z")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	r.Counter("alpha_total", "a")
	r.Gauge("mid_gauge", "m", "k", "1")
	r.Gauge("mid_gauge", "m", "k", "2")
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Index(text, "alpha_total") > strings.Index(text, "mid_gauge") ||
		strings.Index(text, "mid_gauge") > strings.Index(text, "zeta_total") {
		t.Errorf("families not sorted:\n%s", text)
	}
	if strings.Count(text, "# TYPE mid_gauge gauge") != 1 {
		t.Errorf("TYPE must appear once per family:\n%s", text)
	}
	parseExposition(t, text)
}

func TestRegistryUnregister(t *testing.T) {
	r := NewRegistry()
	r.Gauge("fleet_lag", "lag", "worker", "w-000")
	r.Gauge("fleet_lag", "lag", "worker", "w-001")
	r.Unregister("fleet_lag", "worker", "w-000")
	samples, _ := scrape(t, r)
	for _, s := range samples {
		if s.labels["worker"] == "w-000" {
			t.Error("unregistered sample still exposed")
		}
	}
	r.Unregister("fleet_lag", "worker", "w-001")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "fleet_lag") {
		t.Errorf("empty family still exposed:\n%s", b.String())
	}
	// Unregistering a never-registered metric is a no-op.
	r.Unregister("fleet_lag", "worker", "w-404")
}

func TestOnCollectRefreshesGauges(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	g := r.Gauge("refreshed", "refreshed before scrape")
	r.OnCollect(func() { g.Set(v) })
	v = 9
	samples, _ := scrape(t, r)
	if len(samples) != 1 || samples[0].value != 9 {
		t.Fatalf("collect hook did not run: %+v", samples)
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("updown", "up and down")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("gauge = %v after balanced adds", g.Value())
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9leading", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "bad")
		}()
	}
	// Kind conflicts are programming errors too.
	r.Counter("dual_total", "first")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind conflict did not panic")
			}
		}()
		r.Gauge("dual_total", "second")
	}()
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
		3:            "3",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
	// Shortest round-trip must re-parse to the same value.
	for _, v := range []float64{1e-9, 123456.789, 2.5e17} {
		back, err := strconv.ParseFloat(formatFloat(v), 64)
		if err != nil || back != v {
			t.Errorf("round-trip %v -> %q -> %v (%v)", v, formatFloat(v), back, err)
		}
	}
}
