package approxcount

import (
	"math"
	"strings"
	"testing"

	"popstab/internal/prng"
)

func TestMorrisZero(t *testing.T) {
	var m Morris
	if m.Estimate() != 0 {
		t.Errorf("fresh estimate %v", m.Estimate())
	}
	if m.Bits() != 1 {
		t.Errorf("fresh Bits = %d", m.Bits())
	}
}

func TestMorrisFirstIncrementDeterministic(t *testing.T) {
	// With X=0 the increment probability is 2^0 = 1.
	var m Morris
	m.Increment(prng.New(1))
	if m.X != 1 {
		t.Errorf("X = %d after first increment, want 1", m.X)
	}
	if m.Estimate() != 1 {
		t.Errorf("estimate %v, want 1", m.Estimate())
	}
}

// TestMorrisUnbiased checks E[2^X − 1] = n over many independent trials.
func TestMorrisUnbiased(t *testing.T) {
	src := prng.New(2)
	const n = 1000
	const trials = 3000
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		var m Morris
		for i := 0; i < n; i++ {
			m.Increment(src)
		}
		sum += m.Estimate()
	}
	mean := sum / trials
	// std of one estimate ≈ n/√2; of the mean ≈ n/√(2·trials).
	tolerance := 6 * float64(n) / math.Sqrt(2*trials)
	if math.Abs(mean-n) > tolerance {
		t.Errorf("mean estimate %.1f, want %d ± %.1f", mean, n, tolerance)
	}
}

func TestMorrisBitsLogarithmic(t *testing.T) {
	src := prng.New(3)
	var m Morris
	for i := 0; i < 100000; i++ {
		m.Increment(src)
	}
	// X ≈ log₂(100000) ≈ 17, so Bits ≈ 1 + ⌈log₂ 18⌉ ≈ 6.
	if m.Bits() > 8 {
		t.Errorf("Bits = %d for n=1e5; expected Θ(log log n)", m.Bits())
	}
}

func TestMorrisReset(t *testing.T) {
	var m Morris
	m.X = 9
	m.Reset()
	if m.X != 0 {
		t.Error("Reset failed")
	}
}

func TestMorrisString(t *testing.T) {
	var m Morris
	if !strings.Contains(m.String(), "morris") {
		t.Error("String")
	}
}

func TestEnsembleValidation(t *testing.T) {
	if _, err := NewEnsemble(0); err == nil {
		t.Error("accepted k=0")
	}
	e, err := NewEnsemble(8)
	if err != nil {
		t.Fatal(err)
	}
	if e.Size() != 8 {
		t.Errorf("Size = %d", e.Size())
	}
}

// TestEnsembleVarianceReduction verifies that averaging k counters shrinks
// the spread of the estimate versus a single counter.
func TestEnsembleVarianceReduction(t *testing.T) {
	src := prng.New(4)
	const n = 2000
	const trials = 400
	spread := func(k int) float64 {
		sumSq, sum := 0.0, 0.0
		for tr := 0; tr < trials; tr++ {
			e, _ := NewEnsemble(k)
			for i := 0; i < n; i++ {
				e.Increment(src)
			}
			v := e.Estimate()
			sum += v
			sumSq += v * v
		}
		mean := sum / trials
		return math.Sqrt(sumSq/trials - mean*mean)
	}
	s1 := spread(1)
	s16 := spread(16)
	if s16*2 > s1 {
		t.Errorf("ensemble of 16 spread %.1f not clearly below single %.1f", s16, s1)
	}
}

func TestEnsembleReset(t *testing.T) {
	e, _ := NewEnsemble(4)
	src := prng.New(5)
	for i := 0; i < 100; i++ {
		e.Increment(src)
	}
	e.Reset()
	if e.Estimate() != 0 {
		t.Errorf("estimate %v after Reset", e.Estimate())
	}
}

func TestMergeMax(t *testing.T) {
	a, _ := NewEnsemble(3)
	b, _ := NewEnsemble(3)
	a.counters[0].X = 5
	b.counters[0].X = 3
	b.counters[2].X = 7
	if err := a.MergeMax(b); err != nil {
		t.Fatal(err)
	}
	if a.counters[0].X != 5 || a.counters[1].X != 0 || a.counters[2].X != 7 {
		t.Errorf("merge result %+v", a.counters)
	}
	c, _ := NewEnsemble(2)
	if err := a.MergeMax(c); err == nil {
		t.Error("merge accepted size mismatch")
	}
}

// TestMergePoisoning demonstrates the insertion attack on counting: one
// fabricated maximal register dominates every merge, inflating estimates
// arbitrarily — the reason the paper's model defeats counting approaches.
func TestMergePoisoning(t *testing.T) {
	honest, _ := NewEnsemble(4)
	src := prng.New(6)
	for i := 0; i < 100; i++ {
		honest.Increment(src)
	}
	before := honest.Estimate()
	poison, _ := NewEnsemble(4)
	for i := range poison.counters {
		poison.counters[i].X = 40 // claims ≈ 10^12 events
	}
	if err := honest.MergeMax(poison); err != nil {
		t.Fatal(err)
	}
	if honest.Estimate() < 1e9 || honest.Estimate() <= before {
		t.Errorf("poisoning had no effect: %v -> %v", before, honest.Estimate())
	}
}

func BenchmarkMorrisIncrement(b *testing.B) {
	src := prng.New(1)
	var m Morris
	for i := 0; i < b.N; i++ {
		m.Increment(src)
	}
}
