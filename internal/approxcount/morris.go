// Package approxcount implements Morris approximate counters [Mor78], the
// classical technique the paper cites for counting to N in Θ(log log N) bits
// (§1.4, "Approximate Counting").
//
// The paper observes that with a deletion-only, state-oblivious adversary,
// approximate counting techniques can solve population stability, but that
// in the insertion-capable full-information model "constructing approximate
// counters ... [is an] interesting open question". This package provides the
// substrate used by that discussion: the single counter, the averaged
// ensemble that trades memory for accuracy, and a merge operation for
// gossip-style aggregation.
package approxcount

import (
	"fmt"
	"math"

	"popstab/internal/prng"
)

// Morris is a single Morris counter: a Θ(log log n)-bit register X that is
// incremented with probability 2^−X, giving the unbiased estimate 2^X − 1
// with standard deviation ≈ n/√2.
type Morris struct {
	// X is the exponent register. uint8 supports counts beyond 2^255:
	// vastly more than any simulated population.
	X uint8
}

// Increment registers one event: X increases with probability 2^−X.
func (m *Morris) Increment(src *prng.Source) {
	if src.BiasedCoin(int(m.X)) {
		// Saturate rather than wrap; unreachable in practice.
		if m.X < math.MaxUint8 {
			m.X++
		}
	}
}

// Estimate reports the unbiased count estimate 2^X − 1.
func (m *Morris) Estimate() float64 {
	return math.Exp2(float64(m.X)) - 1
}

// Bits reports the register width needed for the current value:
// 1 + ⌈log₂(X+1)⌉, the Θ(log log n) memory the paper quotes.
func (m *Morris) Bits() int {
	bits := 1
	for v := int(m.X); v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// Reset zeroes the counter.
func (m *Morris) Reset() { m.X = 0 }

// String renders the counter.
func (m *Morris) String() string {
	return fmt.Sprintf("morris(X=%d, est=%.0f)", m.X, m.Estimate())
}

// Ensemble averages k independent Morris counters, reducing the estimate's
// relative standard deviation by √k at a cost of k·Θ(log log n) bits.
type Ensemble struct {
	counters []Morris
}

// NewEnsemble builds an ensemble of k counters. k must be positive.
func NewEnsemble(k int) (*Ensemble, error) {
	if k <= 0 {
		return nil, fmt.Errorf("approxcount: ensemble size %d", k)
	}
	return &Ensemble{counters: make([]Morris, k)}, nil
}

// Increment registers one event in every counter (each with its own coin).
func (e *Ensemble) Increment(src *prng.Source) {
	for i := range e.counters {
		e.counters[i].Increment(src)
	}
}

// Estimate averages the per-counter estimates.
func (e *Ensemble) Estimate() float64 {
	sum := 0.0
	for i := range e.counters {
		sum += e.counters[i].Estimate()
	}
	return sum / float64(len(e.counters))
}

// Size reports the number of constituent counters.
func (e *Ensemble) Size() int { return len(e.counters) }

// Reset zeroes every counter.
func (e *Ensemble) Reset() {
	for i := range e.counters {
		e.counters[i].Reset()
	}
}

// Poison sets every register of e to the given exponent, modeling the
// paper's insertion adversary choosing an agent's initial state arbitrarily
// (§2: "the adversary ... can insert agents with arbitrary state"). A
// poisoned ensemble claims ≈ 2^x events and dominates every subsequent
// MergeMax.
func Poison(e *Ensemble, x uint8) {
	for i := range e.counters {
		e.counters[i].X = x
	}
}

// MergeMax folds another ensemble in by taking per-counter maxima. For
// counters that observed disjoint event prefixes of the same stream this is
// the standard gossip aggregation: the maximum register dominates, and the
// estimate approaches the union count. It is exact for idempotent
// aggregation of the same counter and heuristic otherwise — which is
// precisely why the paper's insertion adversary (who may fabricate register
// values) defeats counting-based protocols: a single inserted agent with a
// maximal register poisons every merge it touches.
func (e *Ensemble) MergeMax(other *Ensemble) error {
	if len(e.counters) != len(other.counters) {
		return fmt.Errorf("approxcount: merge size mismatch %d != %d",
			len(e.counters), len(other.counters))
	}
	for i := range e.counters {
		if other.counters[i].X > e.counters[i].X {
			e.counters[i].X = other.counters[i].X
		}
	}
	return nil
}
