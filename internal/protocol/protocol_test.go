package protocol

import (
	"math"
	"testing"

	"popstab/internal/agent"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/wire"
)

// testParams returns a small, fast parameterization: N=4096, Tinner=24
// (still ω(log N) territory at this scale), T=144.
func testParams(t *testing.T) params.Params {
	t.Helper()
	p, err := params.Derive(4096, params.WithTinner(24))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// exchange performs one round for two mutually matched agents a and b,
// mirroring the engine's compose-then-step order.
func exchange(pr *Protocol, a, b *agent.State, src *prng.Source) (actA, actB population.Action) {
	ma := pr.Decode(pr.Compose(a))
	mb := pr.Decode(pr.Compose(b))
	actA = pr.Step(a, mb, true, src)
	actB = pr.Step(b, ma, true, src)
	return actA, actB
}

func TestNewValidation(t *testing.T) {
	if _, err := New(params.Params{}); err == nil {
		t.Error("New accepted zero params")
	}
	p := testParams(t)
	pr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if pr.EpochLen() != p.T {
		t.Errorf("EpochLen = %d, want %d", pr.EpochLen(), p.T)
	}
	if pr.Codec().Bits() != 3 {
		t.Errorf("default codec %d bits, want 3", pr.Codec().Bits())
	}
}

func TestWithCodec(t *testing.T) {
	pr := MustNew(testParams(t), WithCodec(wire.FourBit{}))
	if pr.Codec().Bits() != 4 {
		t.Errorf("codec %d bits, want 4", pr.Codec().Bits())
	}
}

func TestLeaderSelectionFrequency(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(1)
	const trials = 1 << 19
	leaders := 0
	for i := 0; i < trials; i++ {
		s := agent.State{Round: 0}
		pr.Step(&s, wire.Message{}, false, src)
		if s.Active {
			leaders++
			if !s.Recruiting {
				t.Fatal("leader not recruiting")
			}
			if int(s.ToRecruit) != p.HalfLogN {
				t.Fatalf("leader ToRecruit = %d, want %d", s.ToRecruit, p.HalfLogN)
			}
			if s.Color > 1 {
				t.Fatalf("leader color = %d", s.Color)
			}
		}
		if s.Round != 1 {
			t.Fatalf("round after step = %d, want 1", s.Round)
		}
	}
	want := float64(trials) * p.LeaderProb()
	sigma := math.Sqrt(want)
	if math.Abs(float64(leaders)-want) > 6*sigma {
		t.Errorf("%d leaders of %d, want about %.0f +- %.0f", leaders, trials, want, 6*sigma)
	}
	c := pr.Counters()
	if c.Leaders != uint64(leaders) {
		t.Errorf("counter Leaders = %d, want %d", c.Leaders, leaders)
	}
	// Colors should be near-balanced.
	diff := math.Abs(float64(c.LeadersByColor[0]) - float64(c.LeadersByColor[1]))
	if diff > 6*math.Sqrt(float64(leaders)) {
		t.Errorf("leader color imbalance %v of %d leaders", diff, leaders)
	}
}

func TestLeaderSelectionOverwritesInsertedState(t *testing.T) {
	// An adversarially inserted agent claiming active=1 at round 0 is
	// re-randomized by Algorithm 3 (active := TossBiasedCoin(...)); with
	// overwhelming probability per trial it ends up inactive.
	pr := MustNew(testParams(t))
	src := prng.New(2)
	inactive := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		s := agent.State{Round: 0, Active: true, Color: 1, Recruiting: true, ToRecruit: 6}
		pr.Step(&s, wire.Message{}, false, src)
		if !s.Active {
			inactive++
			if s.Color != agent.ColorNone || s.Recruiting || s.ToRecruit != 0 {
				t.Fatalf("non-leader state not cleared: %+v", s)
			}
		}
	}
	if inactive < trials*9/10 {
		t.Errorf("only %d/%d inserted 'leaders' were re-randomized to inactive", inactive, trials)
	}
}

func TestRecruitmentHandshake(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(3)

	recruiter := agent.State{Round: 5, Active: true, Color: 1, Recruiting: true, ToRecruit: 6}
	target := agent.State{Round: 5}

	actR, actT := exchange(pr, &recruiter, &target, src)
	if actR != population.ActKeep || actT != population.ActKeep {
		t.Fatalf("actions %v/%v, want keep/keep", actR, actT)
	}
	if recruiter.Recruiting {
		t.Error("recruiter still recruiting after success")
	}
	if recruiter.ToRecruit != 5 {
		t.Errorf("recruiter ToRecruit = %d, want 5", recruiter.ToRecruit)
	}
	if !target.Active || target.Color != 1 {
		t.Errorf("target not recruited: %+v", target)
	}
	if target.Recruiting {
		t.Error("fresh recruit must not recruit this subphase")
	}
	// Round 5 is in subphase 0, so depth = HalfLogN - 1.
	if int(target.ToRecruit) != p.HalfLogN-1 {
		t.Errorf("recruit depth = %d, want %d", target.ToRecruit, p.HalfLogN-1)
	}
	if pr.Counters().Recruits != 1 {
		t.Errorf("Recruits counter = %d", pr.Counters().Recruits)
	}
}

func TestRecruitmentDepthBySubphase(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(4)
	// A recruit in subphase s gets depth HalfLogN - (s+1).
	for s := 0; s < p.HalfLogN; s++ {
		round := s*p.Tinner + 2 // mid-subphase; not round 0
		if round >= p.T-1 {
			break
		}
		recruiter := agent.State{Round: uint32(round), Active: true, Color: 0, Recruiting: true, ToRecruit: 1}
		target := agent.State{Round: uint32(round)}
		exchange(pr, &recruiter, &target, src)
		want := p.HalfLogN - (s + 1)
		if int(target.ToRecruit) != want {
			t.Errorf("subphase %d (round %d): depth %d, want %d", s, round, target.ToRecruit, want)
		}
	}
}

func TestTwoRecruitersNoOp(t *testing.T) {
	pr := MustNew(testParams(t))
	src := prng.New(5)
	a := agent.State{Round: 5, Active: true, Color: 0, Recruiting: true, ToRecruit: 3}
	b := agent.State{Round: 5, Active: true, Color: 1, Recruiting: true, ToRecruit: 3}
	before := []agent.State{a, b}
	exchange(pr, &a, &b, src)
	// Only the round counters should have advanced.
	for i, s := range []agent.State{a, b} {
		want := before[i]
		want.Round++
		if s != want {
			t.Errorf("recruiter %d changed: %+v -> %+v", i, before[i], s)
		}
	}
}

func TestTwoInactiveNoOp(t *testing.T) {
	pr := MustNew(testParams(t))
	src := prng.New(6)
	a := agent.State{Round: 5}
	b := agent.State{Round: 5}
	exchange(pr, &a, &b, src)
	if a.Active || b.Active {
		t.Error("inactive pair activated each other")
	}
}

func TestNonRecruitingActiveDoesNotRecruit(t *testing.T) {
	// An active agent that already recruited this subphase must not claim
	// another inactive agent.
	pr := MustNew(testParams(t))
	src := prng.New(7)
	a := agent.State{Round: 5, Active: true, Color: 1, Recruiting: false, ToRecruit: 2}
	b := agent.State{Round: 5}
	exchange(pr, &a, &b, src)
	if b.Active {
		t.Error("non-recruiting active agent recruited")
	}
	if a.ToRecruit != 2 {
		t.Errorf("ToRecruit changed to %d", a.ToRecruit)
	}
}

func TestSubphaseBoundaryRearmsOnlyActive(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(8)
	boundary := uint32(p.Tinner - 1) // round ≡ -1 (mod Tinner)

	active := agent.State{Round: boundary, Active: true, Color: 0, ToRecruit: 3}
	pr.Step(&active, wire.Message{}, false, src)
	if !active.Recruiting {
		t.Error("active agent not re-armed at subphase boundary")
	}

	inactive := agent.State{Round: boundary}
	pr.Step(&inactive, wire.Message{}, false, src)
	if inactive.Recruiting {
		t.Error("inactive agent re-armed at subphase boundary (paper clarification violated)")
	}
}

func TestRecruitMissCounter(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(9)
	s := agent.State{Round: uint32(p.Tinner - 1), Active: true, Recruiting: true, ToRecruit: 3}
	pr.Step(&s, wire.Message{}, false, src)
	if pr.Counters().RecruitMisses != 1 {
		t.Errorf("RecruitMisses = %d, want 1", pr.Counters().RecruitMisses)
	}
}

func TestEvaluationSameColorSplitRate(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(10)
	const trials = 200000
	splits, deaths := 0, 0
	for i := 0; i < trials; i++ {
		s := agent.State{Round: uint32(p.T - 1), Active: true, Color: 1}
		nbr := wire.Message{InEvalPhase: true, Active: true, Color: 1}
		switch pr.Step(&s, nbr, true, src) {
		case population.ActSplit:
			splits++
		case population.ActDie:
			deaths++
		}
		if s.Active || s.Round != 0 {
			t.Fatal("state not reset after evaluation")
		}
	}
	if deaths != 0 {
		t.Fatalf("%d deaths on same-color evaluation", deaths)
	}
	want := float64(trials) * p.SplitProb()
	sigma := math.Sqrt(float64(trials) * p.SplitProb() * (1 - p.SplitProb()))
	if math.Abs(float64(splits)-want) > 6*sigma {
		t.Errorf("splits = %d, want about %.0f +- %.0f", splits, want, 6*sigma)
	}
}

func TestEvaluationDifferentColorDies(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(11)
	for i := 0; i < 100; i++ {
		s := agent.State{Round: uint32(p.T - 1), Active: true, Color: 0}
		nbr := wire.Message{InEvalPhase: true, Active: true, Color: 1}
		if act := pr.Step(&s, nbr, true, src); act != population.ActDie {
			t.Fatalf("different colors: action %v, want die", act)
		}
	}
	if pr.Counters().EvalDeaths != 100 {
		t.Errorf("EvalDeaths = %d", pr.Counters().EvalDeaths)
	}
}

func TestEvaluationInactiveOrUnmatchedKeeps(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(12)
	cases := []struct {
		name   string
		s      agent.State
		nbr    wire.Message
		hasNbr bool
	}{
		{"unmatched active", agent.State{Round: uint32(p.T - 1), Active: true, Color: 1}, wire.Message{}, false},
		{"inactive self", agent.State{Round: uint32(p.T - 1)}, wire.Message{InEvalPhase: true, Active: true, Color: 1}, true},
		{"inactive neighbor", agent.State{Round: uint32(p.T - 1), Active: true, Color: 1}, wire.Message{InEvalPhase: true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.s
			if act := pr.Step(&s, tc.nbr, tc.hasNbr, src); act != population.ActKeep {
				t.Errorf("action %v, want keep", act)
			}
			if s.Round != 0 || s.Active {
				t.Error("evaluation round must reset state and wrap round")
			}
		})
	}
}

func TestConsistencyCheckKillsBoth(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(13)
	// a is at evaluation round, b is mid-epoch: both must die.
	a := agent.State{Round: uint32(p.T - 1), Active: true, Color: 0}
	b := agent.State{Round: 5}
	actA, actB := exchange(pr, &a, &b, src)
	if actA != population.ActDie || actB != population.ActDie {
		t.Errorf("actions %v/%v, want die/die", actA, actB)
	}
	if pr.Counters().ConsistencyDeaths != 2 {
		t.Errorf("ConsistencyDeaths = %d, want 2", pr.Counters().ConsistencyDeaths)
	}
}

func TestConsistencyCheckPassesForAgreeingRounds(t *testing.T) {
	// Agents with different non-eval rounds do NOT die: only the
	// evaluation-phase indicator is exchanged (three-bit message), so
	// mismatched mid-epoch rounds go undetected until one reaches the
	// evaluation round. This is exactly the paper's weakened check.
	pr := MustNew(testParams(t))
	src := prng.New(14)
	a := agent.State{Round: 5}
	b := agent.State{Round: 7}
	actA, actB := exchange(pr, &a, &b, src)
	if actA != population.ActKeep || actB != population.ActKeep {
		t.Errorf("mid-epoch round mismatch killed agents: %v/%v", actA, actB)
	}
}

func TestSanitizeOutOfRangeRound(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(15)
	s := agent.State{Round: uint32(p.T + 5)}
	pr.Step(&s, wire.Message{}, false, src)
	if int(s.Round) >= p.T {
		t.Errorf("round %d not sanitized", s.Round)
	}
}

func TestCountersReset(t *testing.T) {
	pr := MustNew(testParams(t))
	pr.Counters().Leaders = 5
	pr.Counters().Reset()
	if pr.Counters().Leaders != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestCountersString(t *testing.T) {
	pr := MustNew(testParams(t))
	if s := pr.Counters().String(); len(s) == 0 {
		t.Error("empty counters string")
	}
}
