// Package protocol implements the population stability protocol of
// Goldwasser, Ostrovsky, Scafuro and Sealfon (PODC 2018), Algorithms 1–7.
//
// Each agent runs MainProtocolStep every round:
//
//  1. exchange messages with the matched neighbor, if any (Algorithm 2);
//  2. check round consistency — die on an inEvalPhase mismatch (Algorithm 7);
//  3. dispatch on the round within the epoch: leader selection in round 0
//     (Algorithm 3), recruitment in rounds 1..T−2 (Algorithm 5), and the
//     evaluation phase in round T−1 (Algorithm 6);
//  4. advance the round counter modulo T.
//
// The protocol is a pure per-agent state machine: Step mutates exactly one
// agent's state and reports whether that agent keeps, dies, or splits. The
// simulation engine (internal/sim) owns message delivery and population
// mutation, mirroring the model's separation between agents and scheduler.
//
// Two clarifications of the paper's pseudocode are applied (see DESIGN.md §2):
// the subphase-boundary re-arm of the recruiting flag applies only to active
// agents, and daughters of a split inherit the parent's post-reset state.
package protocol

import (
	"fmt"
	"sync/atomic"

	"popstab/internal/agent"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/wire"
)

// Counters accumulates per-run event counts for analysis and experiments.
// The protocol increments them atomically (Step may run concurrently across
// agents under the parallel round engine); callers read and reset them
// between measurement windows, outside any running round. They are not part
// of any agent's state. Totals are deterministic across worker counts
// because per-agent events are — only the increment order varies.
type Counters struct {
	// Leaders counts successful leader-selection coin flips.
	Leaders uint64
	// LeadersByColor splits Leaders by chosen color.
	LeadersByColor [2]uint64
	// Recruits counts activations during recruitment.
	Recruits uint64
	// EvalSplits counts splits in evaluation phases.
	EvalSplits uint64
	// EvalDeaths counts deaths from color mismatches in evaluation phases.
	EvalDeaths uint64
	// ConsistencyDeaths counts deaths from the round-consistency check.
	ConsistencyDeaths uint64
	// RecruitMisses counts subphase boundaries at which an active agent had
	// not recruited during the elapsed subphase (its recruiting flag was
	// still set when re-armed). Lemma 5 predicts these are rare.
	RecruitMisses uint64
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// String renders the counters compactly.
func (c *Counters) String() string {
	return fmt.Sprintf("leaders=%d (c0=%d c1=%d) recruits=%d splits=%d evalDeaths=%d consistencyDeaths=%d misses=%d",
		c.Leaders, c.LeadersByColor[0], c.LeadersByColor[1],
		c.Recruits, c.EvalSplits, c.EvalDeaths, c.ConsistencyDeaths, c.RecruitMisses)
}

// Protocol is the population stability protocol configured for a target size
// N. It is safe to share across agents (all per-agent state lives in
// agent.State) and across the engine's step workers: the configuration is
// immutable after New and the counters are incremented atomically.
type Protocol struct {
	p            params.Params
	codec        wire.Codec
	stats        Counters
	noRoundCheck bool
}

// Option customizes New.
type Option func(*Protocol)

// WithCodec selects the message codec (default wire.ThreeBit).
func WithCodec(c wire.Codec) Option {
	return func(pr *Protocol) { pr.codec = c }
}

// WithoutRoundCheck disables the CheckRoundConsistency subroutine
// (Algorithm 7). It exists solely for the A1 ablation, which shows the
// desynchronization attack succeeding when the check is removed.
func WithoutRoundCheck() Option {
	return func(pr *Protocol) { pr.noRoundCheck = true }
}

// New constructs the protocol for the given parameters.
func New(p params.Params, opts ...Option) (*Protocol, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pr := &Protocol{p: p, codec: wire.ThreeBit{}}
	for _, opt := range opts {
		opt(pr)
	}
	return pr, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// error and is intended for tests and examples.
func MustNew(p params.Params, opts ...Option) *Protocol {
	pr, err := New(p, opts...)
	if err != nil {
		panic(err)
	}
	return pr
}

// EncodeState appends the accumulated event counters to a snapshot
// (internal/sim's StateCodec). The counters are the protocol's only mutable
// state — the configuration is immutable — so capturing them makes a
// restored run's observable statistics, not just its trajectory, continue
// exactly. Serial phases only (no round may be in flight).
func (pr *Protocol) EncodeState(e *wire.Enc) {
	c := &pr.stats
	for _, v := range []uint64{
		c.Leaders, c.LeadersByColor[0], c.LeadersByColor[1], c.Recruits,
		c.EvalSplits, c.EvalDeaths, c.ConsistencyDeaths, c.RecruitMisses,
	} {
		e.U64(v)
	}
}

// DecodeState reinstates counters captured by EncodeState.
func (pr *Protocol) DecodeState(d *wire.Dec) error {
	c := &pr.stats
	for _, p := range []*uint64{
		&c.Leaders, &c.LeadersByColor[0], &c.LeadersByColor[1], &c.Recruits,
		&c.EvalSplits, &c.EvalDeaths, &c.ConsistencyDeaths, &c.RecruitMisses,
	} {
		*p = d.U64()
	}
	return d.Err()
}

// Params returns the protocol's parameter set.
func (pr *Protocol) Params() params.Params { return pr.p }

// Counters returns the accumulated event counters.
func (pr *Protocol) Counters() *Counters { return &pr.stats }

// EpochLen reports the epoch length T in rounds.
func (pr *Protocol) EpochLen() int { return pr.p.T }

// Codec reports the message codec in use.
func (pr *Protocol) Codec() wire.Codec { return pr.codec }

// Compose encodes the message agent s sends this round (Algorithm 2).
func (pr *Protocol) Compose(s *agent.State) uint8 {
	pr.sanitize(s)
	return pr.codec.Encode(s.Message(pr.p.T))
}

// Decode decodes a received message byte.
func (pr *Protocol) Decode(b uint8) wire.Message { return pr.codec.Decode(b) }

// sanitize canonicalizes memory an adversary may have fabricated: the round
// counter is reduced modulo T (the physical register holds ⌈log T⌉ bits, so
// reduction is how overflow would behave), and the recruiting/color flags of
// an inactive agent are cleared. The latter enforces the invariant
// recruiting ⇒ active that the paper's three-bit encoding presupposes (proof
// of Theorem 2): without it, an inserted "phantom recruiter" (active = 0,
// recruiting = 1) would be indistinguishable on the wire from a real one
// and could color other agents while remaining inactive itself.
func (pr *Protocol) sanitize(s *agent.State) {
	if int(s.Round) >= pr.p.T {
		s.Round %= uint32(pr.p.T)
	}
	if !s.Active {
		s.Recruiting = false
		s.Color = agent.ColorNone
	}
	// toRecruit is analysis-only bookkeeping; clamp fabricated values into
	// the register's meaningful range [0, ½log N].
	if s.ToRecruit < 0 {
		s.ToRecruit = 0
	}
	if int(s.ToRecruit) > pr.p.HalfLogN {
		s.ToRecruit = int8(pr.p.HalfLogN)
	}
}

// Step executes one round of MainProtocolStep (Algorithm 1) for a single
// agent. nbr is the decoded message from the matched neighbor, valid only if
// hasNbr; src supplies the agent's private coin flips. The returned action
// tells the engine whether the agent survives, dies, or splits; daughters of
// a split inherit the post-step state.
func (pr *Protocol) Step(s *agent.State, nbr wire.Message, hasNbr bool, src *prng.Source) population.Action {
	pr.sanitize(s)

	// CheckRoundConsistency (Algorithm 7): die on an evaluation-phase
	// indicator mismatch. This removes adversarially inserted agents with a
	// wrong round counter at their first contact with the majority, at the
	// cost of the matched correct agent (Lemma 3 bounds the damage).
	if !pr.noRoundCheck && hasNbr && s.InEvalPhase(pr.p.T) != nbr.InEvalPhase {
		atomic.AddUint64(&pr.stats.ConsistencyDeaths, 1)
		return population.ActDie
	}

	round := int(s.Round)
	switch {
	case round == 0:
		pr.determineIfLeader(s, src)
		s.AdvanceRound(pr.p.T)
		return population.ActKeep

	case round < pr.p.T-1:
		pr.recruitmentStep(s, nbr, hasNbr, round)
		s.AdvanceRound(pr.p.T)
		return population.ActKeep

	default:
		act := pr.evaluationStep(s, nbr, hasNbr, src)
		// Algorithm 6 lines 12–14 and Algorithm 1 line 12: clear coloring
		// state and wrap to round 0. Daughters inherit this fresh state.
		s.ResetEpochState()
		s.Round = 0
		return act
	}
}

// determineIfLeader is Algorithm 3: become a leader with probability
// 1/(8√N), choosing a uniform color and arming recruitment for a cluster of
// √N agents. Note the paper assigns active := TossBiasedCoin(...), i.e. the
// coin overwrites any prior activation state — adversarially inserted
// "active" agents are re-randomized here like everyone else.
func (pr *Protocol) determineIfLeader(s *agent.State, src *prng.Source) {
	if src.BiasedCoin(pr.p.LeaderBiasExp) {
		s.Active = true
		s.Color = src.Bit()
		s.Recruiting = true
		s.ToRecruit = int8(pr.p.HalfLogN)
		atomic.AddUint64(&pr.stats.Leaders, 1)
		atomic.AddUint64(&pr.stats.LeadersByColor[s.Color], 1)
	} else {
		s.Active = false
		s.Color = agent.ColorNone
		s.Recruiting = false
		s.ToRecruit = 0
	}
}

// recruitmentStep is Algorithm 5. A recruiting agent that meets an inactive
// agent claims it (and stands down for the rest of the subphase); an
// inactive agent that meets a recruiter joins the recruiter's cluster,
// inheriting its color and a recruitment quota derived from the current
// round. At each subphase boundary every active agent re-arms.
func (pr *Protocol) recruitmentStep(s *agent.State, nbr wire.Message, hasNbr bool, round int) {
	if hasNbr {
		switch {
		case s.Recruiting && !nbr.Active:
			// Other agent has been activated by us this round.
			s.Recruiting = false
			if s.ToRecruit > 0 {
				s.ToRecruit--
			}
		case !s.Active && nbr.Recruiting:
			// This agent is activated into the neighbor's cluster.
			s.Active = true
			s.Color = nbr.Color
			s.Recruiting = false
			d := pr.p.RecruitDepthAt(round)
			if d < 0 {
				d = 0
			}
			s.ToRecruit = int8(d)
			atomic.AddUint64(&pr.stats.Recruits, 1)
		}
	}
	if pr.p.IsSubphaseBoundary(round) && s.Active {
		if s.Recruiting {
			// The agent failed to find an inactive agent all subphase.
			atomic.AddUint64(&pr.stats.RecruitMisses, 1)
		}
		s.Recruiting = true
	}
}

// evaluationStep is Algorithm 6: matched active pairs compare colors. Equal
// colors split with probability 1 − 16/√N; unequal colors die. Unmatched or
// inactive agents do nothing.
func (pr *Protocol) evaluationStep(s *agent.State, nbr wire.Message, hasNbr bool, src *prng.Source) population.Action {
	if !hasNbr || !s.Active || !nbr.Active {
		return population.ActKeep
	}
	if nbr.Color == s.Color {
		// c := TossBiasedCoin(log(√N/16)); if c = 0 then Split().
		if !src.BiasedCoin(pr.p.SplitBiasExp) {
			atomic.AddUint64(&pr.stats.EvalSplits, 1)
			return population.ActSplit
		}
		return population.ActKeep
	}
	atomic.AddUint64(&pr.stats.EvalDeaths, 1)
	return population.ActDie
}
