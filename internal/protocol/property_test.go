package protocol

import (
	"testing"
	"testing/quick"

	"popstab/internal/agent"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/wire"
)

// arbitraryState builds an agent state from fuzz inputs, covering both
// protocol-reachable and adversarially inserted (arbitrary) states.
func arbitraryState(round uint16, active bool, color uint8, recruiting bool, depth uint8) agent.State {
	s := agent.State{
		Round:      uint32(round),
		Active:     active,
		Color:      color & 1,
		Recruiting: recruiting,
		ToRecruit:  int8(depth % 8),
	}
	return s
}

// arbitraryMessage builds a received message from fuzz inputs. Adversarially
// inserted agents can cause any decodable message to arrive.
func arbitraryMessage(bits uint8) wire.Message {
	return wire.ThreeBit{}.Decode(bits & 7)
}

// TestStepPreservesInvariants: from ANY starting state and ANY received
// message, one protocol step leaves the agent in a state a protocol-
// following agent could legally hold: round in range, binary color,
// recruiting only while active, bounded quota. This is the safety property
// that lets Lemma 3's analysis treat inserted agents as merely desynced, not
// corrupting.
func TestStepPreservesInvariants(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(1000)
	f := func(round uint16, active bool, color uint8, recruiting bool, depth uint8, msgBits uint8, hasNbr bool) bool {
		s := arbitraryState(round, active, color, recruiting, depth)
		pr.Step(&s, arbitraryMessage(msgBits), hasNbr, src)
		if int(s.Round) >= p.T {
			return false
		}
		if s.Color > 1 {
			return false
		}
		if s.Recruiting && !s.Active {
			return false
		}
		if s.ToRecruit < 0 || int(s.ToRecruit) > p.HalfLogN {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestStepAdvancesOrWrapsRound: every step moves the round counter forward
// by exactly one (mod T), regardless of state or message. The epoch clock
// never stalls or skips.
func TestStepAdvancesOrWrapsRound(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(1001)
	f := func(round uint16, active bool, color uint8, recruiting bool, msgBits uint8, hasNbr bool) bool {
		s := arbitraryState(round, active, color, recruiting, 0)
		pr.sanitize(&s)
		before := int(s.Round)
		act := pr.Step(&s, arbitraryMessage(msgBits), hasNbr, src)
		if act == population.ActDie {
			return true // dead agents have no round
		}
		want := (before + 1) % p.T
		return int(s.Round) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestStepSplitOnlyInEvaluation: ActSplit can only be produced in the
// evaluation round — the protocol's only reproduction site (Algorithm 6).
func TestStepSplitOnlyInEvaluation(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(1002)
	f := func(round uint16, active bool, color uint8, recruiting bool, msgBits uint8, hasNbr bool) bool {
		s := arbitraryState(round, active, color, recruiting, 0)
		pr.sanitize(&s)
		wasEval := s.InEvalPhase(p.T)
		act := pr.Step(&s, arbitraryMessage(msgBits), hasNbr, src)
		if act == population.ActSplit && !wasEval {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestStepDeathSites: deaths happen only from the consistency check (any
// round) or a color mismatch in the evaluation round.
func TestStepDeathSites(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(1003)
	f := func(round uint16, active bool, color uint8, recruiting bool, msgBits uint8, hasNbr bool) bool {
		s := arbitraryState(round, active, color, recruiting, 0)
		pr.sanitize(&s)
		wasEval := s.InEvalPhase(p.T)
		msg := arbitraryMessage(msgBits)
		act := pr.Step(&s, msg, hasNbr, src)
		if act != population.ActDie {
			return true
		}
		if !hasNbr {
			return false // no interaction, no death
		}
		consistency := wasEval != msg.InEvalPhase
		evalMismatch := wasEval && msg.InEvalPhase && msg.Active && msg.Color != color&1
		return consistency || evalMismatch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestStepDeterministicGivenStream: identical inputs and PRNG state yield
// identical outputs — the replay guarantee experiments rely on.
func TestStepDeterministicGivenStream(t *testing.T) {
	p := testParams(t)
	f := func(seed uint64, round uint16, active bool, color uint8, msgBits uint8, hasNbr bool) bool {
		pr1, pr2 := MustNew(p), MustNew(p)
		s1 := arbitraryState(round, active, color, false, 0)
		s2 := s1
		a1 := pr1.Step(&s1, arbitraryMessage(msgBits), hasNbr, prng.New(seed))
		a2 := pr2.Step(&s2, arbitraryMessage(msgBits), hasNbr, prng.New(seed))
		return a1 == a2 && s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEvalAlwaysResets: whatever happens in the evaluation round, a
// surviving agent leaves it deactivated with a wrapped round counter.
func TestEvalAlwaysResets(t *testing.T) {
	p := testParams(t)
	pr := MustNew(p)
	src := prng.New(1004)
	f := func(active bool, color uint8, recruiting bool, msgBits uint8, hasNbr bool) bool {
		s := arbitraryState(uint16(p.T-1), active, color, recruiting, 3)
		act := pr.Step(&s, arbitraryMessage(msgBits), hasNbr, src)
		if act == population.ActDie {
			return true
		}
		return !s.Active && !s.Recruiting && s.Color == agent.ColorNone &&
			s.ToRecruit == 0 && s.Round == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
