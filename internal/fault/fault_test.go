package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilSetNeverFires(t *testing.T) {
	var s *Set
	if err := s.Fire(RunnerPanic); err != nil {
		t.Fatalf("nil set fired: %v", err)
	}
	if got := s.Fired(RunnerPanic); got != 0 {
		t.Fatalf("nil set counted %d fires", got)
	}
	s.Disarm(RunnerPanic) // must not panic
}

func TestArmConsumesCharges(t *testing.T) {
	s := NewSet()
	want := errors.New("boom")
	s.Arm(CheckpointWrite, 2, want)
	for i := 0; i < 2; i++ {
		if err := s.Fire(CheckpointWrite); !errors.Is(err, want) {
			t.Fatalf("fire %d: %v, want %v", i, err, want)
		}
	}
	if err := s.Fire(CheckpointWrite); err != nil {
		t.Fatalf("exhausted point still fires: %v", err)
	}
	if got := s.Fired(CheckpointWrite); got != 2 {
		t.Fatalf("fired count %d, want 2", got)
	}
}

func TestUnlimitedAndDisarm(t *testing.T) {
	s := NewSet()
	s.Arm(RunnerPanic, -1, nil)
	for i := 0; i < 5; i++ {
		if err := s.Fire(RunnerPanic); err == nil {
			t.Fatalf("unlimited arm did not fire on %d", i)
		}
	}
	s.Disarm(RunnerPanic)
	if err := s.Fire(RunnerPanic); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if got := s.Fired(RunnerPanic); got != 5 {
		t.Fatalf("fired count %d, want 5", got)
	}
}

func TestDefaultErrorNamesPoint(t *testing.T) {
	s := NewSet()
	s.Arm(SnapshotEncode, 1, nil)
	err := s.Fire(SnapshotEncode)
	if err == nil || !contains(err.Error(), string(SnapshotEncode)) {
		t.Fatalf("default error %v does not name the point", err)
	}
}

func TestArmZeroTimesIsDisarm(t *testing.T) {
	s := NewSet()
	s.Arm(RunnerPanic, -1, nil)
	s.Arm(RunnerPanic, 0, nil)
	if err := s.Fire(RunnerPanic); err != nil {
		t.Fatalf("zero-times arm left the point armed: %v", err)
	}
}

func TestDelayInjection(t *testing.T) {
	s := NewSet()
	s.ArmDelay(SlowStep, 1, 30*time.Millisecond)
	start := time.Now()
	if err := s.Fire(SlowStep); err != nil {
		t.Fatalf("delay arm returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("fire returned after %v, want >= 30ms", d)
	}
	if err := s.Fire(SlowStep); err != nil {
		t.Fatal("delay charge not consumed")
	}
}

func TestConcurrentFire(t *testing.T) {
	s := NewSet()
	s.Arm(RunnerPanic, 100, nil)
	var wg sync.WaitGroup
	var hits sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 50; i++ {
				if s.Fire(RunnerPanic) != nil {
					n++
				}
			}
			hits.Store(g, n)
		}(g)
	}
	wg.Wait()
	total := 0
	hits.Range(func(_, v any) bool { total += v.(int); return true })
	if total != 100 {
		t.Fatalf("%d total fires across goroutines, want exactly 100", total)
	}
	if got := s.Fired(RunnerPanic); got != 100 {
		t.Fatalf("fired count %d, want 100", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
