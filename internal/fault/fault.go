// Package fault is the failure-injection seam of the serving stack: a
// registry of named failure points that production code consults at the
// exact places where the real world can go wrong (a snapshot that cannot
// encode, a checkpoint write that hits a full disk, a runner goroutine that
// panics, a step that stalls). In production the registry is nil and every
// consultation is a nil-receiver no-op; chaos tests arm points on a private
// Set and then assert the system's invariants — no leaked pool slots or
// goroutines, a coherent dedupe cache, bit-identical recovery — under the
// injected failures.
//
// The design deliberately avoids package-global state: a Set is plumbed
// through configuration (serve.Config.Faults, FSStore.Faults), so parallel
// tests cannot observe each other's injections and the production fast path
// is a nil check.
package fault

import (
	"fmt"
	"sync"
	"time"
)

// Point names one injectable failure site. The catalog below is the
// complete set production code consults; tests arm a subset per scenario.
type Point string

// The failure-point catalog.
const (
	// SnapshotEncode fails the manager's session-snapshot capture before a
	// checkpoint is encoded (the in-memory half of a checkpoint write).
	SnapshotEncode Point = "snapshot-encode"
	// CheckpointWrite fails the durable checkpoint write. FSStore fires it
	// after the temp file is written but before the atomic rename, so an
	// injected failure models a crash mid-write: the previous checkpoint
	// must survive untouched.
	CheckpointWrite Point = "checkpoint-write"
	// RunnerPanic panics a job's runner goroutine inside a step quantum.
	RunnerPanic Point = "runner-panic"
	// SlowStep delays a step quantum (armed with a duration, no error):
	// the latency-injection point deadline tests lean on.
	SlowStep Point = "slow-step"
)

// Set is an armable collection of failure points. The zero value is not
// used; create with NewSet. A nil *Set is valid everywhere and never
// fires — production code passes nil through configuration and pays only
// the nil check.
type Set struct {
	mu    sync.Mutex
	arms  map[Point]*arm
	fired map[Point]uint64
}

// arm is one armed failure point.
type arm struct {
	remaining int // fires left; < 0 means unlimited
	err       error
	delay     time.Duration
}

// NewSet returns an empty, unarmed set.
func NewSet() *Set {
	return &Set{arms: make(map[Point]*arm), fired: make(map[Point]uint64)}
}

// Arm schedules p to fail times times (times < 0: until Disarm) with err
// (nil: a generic injected-failure error). Re-arming replaces the previous
// schedule.
func (s *Set) Arm(p Point, times int, err error) {
	if err == nil {
		err = fmt.Errorf("fault: injected failure at %s", p)
	}
	s.arm(p, &arm{remaining: times, err: err})
}

// ArmDelay schedules p to sleep d for the next times consultations without
// failing them — latency injection rather than error injection.
func (s *Set) ArmDelay(p Point, times int, d time.Duration) {
	s.arm(p, &arm{remaining: times, delay: d})
}

func (s *Set) arm(p Point, a *arm) {
	if a.remaining == 0 {
		s.Disarm(p)
		return
	}
	s.mu.Lock()
	s.arms[p] = a
	s.mu.Unlock()
}

// Disarm removes any schedule for p. Fired counts are kept.
func (s *Set) Disarm(p Point) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.arms, p)
	s.mu.Unlock()
}

// Fire is the production-side consultation: it reports the injected error
// for p, consuming one charge, or nil when p is unarmed (always nil on a
// nil Set). A delay-armed point sleeps before returning its (typically
// nil) error, so latency and failure injection share one call site.
func (s *Set) Fire(p Point) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	a := s.arms[p]
	if a == nil {
		s.mu.Unlock()
		return nil
	}
	if a.remaining > 0 {
		a.remaining--
		if a.remaining == 0 {
			delete(s.arms, p)
		}
	}
	s.fired[p]++
	delay, err := a.delay, a.err
	s.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// Fired reports how many times p has fired since the set was created
// (0 on a nil Set) — the observability hook chaos tests assert against.
func (s *Set) Fired(p Point) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired[p]
}
