package popstab

import (
	"fmt"
	"sort"
	"strings"

	"popstab/internal/adversary"
)

// Adversary strategy constructors, re-exported from the internal library.
// Every strategy observes the full memory of every agent (the model's
// full-information adversary) and is budget-limited by Config.K and
// Config.PerEpochBudget.

// NoAdversary returns the absent adversary.
func NoAdversary() Adversary { return adversary.None{} }

// NewRandomDeleter deletes arbitrary agents.
func NewRandomDeleter() Adversary { return adversary.NewRandomDeleter() }

// NewLeaderKiller deletes activated agents — early in an epoch these are the
// cluster roots, so each deletion prunes up to √N prospective recruits.
func NewLeaderKiller() Adversary { return adversary.NewLeaderKiller() }

// NewColorDeleter deletes active agents of one color, skewing the color
// distribution (the attack from the paper's footnote 9).
func NewColorDeleter(color uint8) Adversary { return adversary.NewColorDeleter(color) }

// NewBenignInserter inserts inactive agents with the correct round counter.
func NewBenignInserter() Adversary { return adversary.NewBenignInserter() }

// NewWrongRoundInserter inserts agents whose round counter is offset from
// the majority's — the desynchronization attack addressed by Lemma 3.
func NewWrongRoundInserter(offset int) Adversary { return adversary.NewWrongRoundInserter(offset) }

// NewEvalFlooder inserts agents that believe they are in the evaluation
// round; each dies at first contact and takes one correct agent along
// (a deletion amplifier).
func NewEvalFlooder() Adversary { return adversary.NewEvalFlooder() }

// NewFakeLeaderInserter inserts recruiting cluster roots of a fixed color.
func NewFakeLeaderInserter(color uint8) Adversary { return adversary.NewFakeLeaderInserter(color) }

// NewSingletonInserter inserts colored singleton "clusters" that dilute the
// color correlation, biasing the variance signal toward "population too
// large".
func NewSingletonInserter() Adversary { return adversary.NewSingletonInserter() }

// NewColorSkewer combines deletion and insertion to push the color
// distribution in one direction (up = inflate the population).
func NewColorSkewer(up bool) Adversary { return adversary.NewColorSkewer(up) }

// NewGreedy adaptively pushes the population away from the target with the
// strongest sub-strategy for the current state.
func NewGreedy() Adversary { return adversary.NewGreedy() }

// NewTrauma deletes at full budget during [startRound, startRound+rounds):
// the acute-injury scenario from the paper's biological motivation.
func NewTrauma(startRound, rounds uint64) Adversary { return adversary.NewTrauma(startRound, rounds) }

// NewPatchDeleter concentrates every deletion inside one ball of the
// topology (spec.Center, spec.Radius), nearest agents first — the deletion
// form of the patch attack. On a non-spatial topology it degrades to
// uniform random deletion.
func NewPatchDeleter(spec PatchSpec) Adversary {
	return adversary.NewPatchDeleter(spec.Center, spec.Radius)
}

// NewClusterInserter seeds a patch of fake recruiting leaders of the given
// color at adversary-chosen points inside the ball — the footnote-9 attack,
// spatially concentrated. On a non-spatial topology the positions are
// ignored.
func NewClusterInserter(spec PatchSpec, color uint8) Adversary {
	in := adversary.NewClusterInserter(spec.Center, spec.Radius, adversary.FakeLeaderGen(color))
	in.Label = fmt.Sprintf("insert-cluster-leader%d(r=%.3g)", color, spec.Radius)
	return in
}

// NewRewireDenier owns the SmallWorld long-range link assignment: agents
// inside the ball are pinned to their ring neighborhood (spec.Radius < 0:
// every agent), re-shielding a patch from the long-range contacts that
// would otherwise reach its interior. Costs no alteration budget and works
// at K = 0; inert on non-SmallWorld topologies.
func NewRewireDenier(spec PatchSpec) Adversary {
	return adversary.NewRewireDenier(spec.Center, spec.Radius)
}

// NewRewireForcer drags honest agents' long-range links INTO the patch:
// every agent's candidate set is rewired each round and drawn from the
// agents inside the ball, so the whole population proposes to the patch
// residents instead of only its boundary — the offensive complement of
// NewRewireDenier's shielding. Costs no alteration budget and works at
// K = 0; inert on non-SmallWorld topologies.
func NewRewireForcer(spec PatchSpec) Adversary {
	return adversary.NewRewireForcer(spec.Center, spec.Radius)
}

// NewComposite runs several strategies in order against a shared budget.
func NewComposite(label string, parts ...Adversary) Adversary {
	return adversary.NewComposite(label, parts...)
}

// NewAlternator switches between two strategies every period rounds (0 = one
// epoch).
func NewAlternator(period int, a, b Adversary) Adversary {
	return &adversary.Alternator{Period: period, A: a, B: b}
}

// adversaryFactories maps CLI names to constructors (p is available for
// strategies that need protocol geometry).
func adversaryFactories() map[string]func(p Params) Adversary {
	return map[string]func(p Params) Adversary{
		"none":             func(Params) Adversary { return NoAdversary() },
		"delete-random":    func(Params) Adversary { return NewRandomDeleter() },
		"delete-active":    func(Params) Adversary { return NewLeaderKiller() },
		"delete-color0":    func(Params) Adversary { return NewColorDeleter(0) },
		"delete-color1":    func(Params) Adversary { return NewColorDeleter(1) },
		"insert-benign":    func(Params) Adversary { return NewBenignInserter() },
		"insert-leader0":   func(Params) Adversary { return NewFakeLeaderInserter(0) },
		"insert-leader1":   func(Params) Adversary { return NewFakeLeaderInserter(1) },
		"insert-singleton": func(Params) Adversary { return NewSingletonInserter() },
		"insert-eval":      func(Params) Adversary { return NewEvalFlooder() },
		"insert-offset":    func(p Params) Adversary { return NewWrongRoundInserter(p.T / 2) },
		"skew-up":          func(Params) Adversary { return NewColorSkewer(true) },
		"skew-down":        func(Params) Adversary { return NewColorSkewer(false) },
		"greedy":           func(Params) Adversary { return NewGreedy() },
	}
}

// spatialAdversaryFactories maps CLI names to constructors of the
// patch-attack family, parameterized by the patch ball. These strategies
// need a spatial topology to act as designed (NewSpatialAdversaryByName
// documents their non-spatial degradation).
func spatialAdversaryFactories() map[string]func(p Params, spec PatchSpec) Adversary {
	return map[string]func(p Params, spec PatchSpec) Adversary{
		"delete-patch":    func(_ Params, spec PatchSpec) Adversary { return NewPatchDeleter(spec) },
		"cluster-leader0": func(_ Params, spec PatchSpec) Adversary { return NewClusterInserter(spec, 0) },
		"cluster-leader1": func(_ Params, spec PatchSpec) Adversary { return NewClusterInserter(spec, 1) },
		"rewire-deny":     func(_ Params, spec PatchSpec) Adversary { return NewRewireDenier(spec) },
		"rewire-force":    func(_ Params, spec PatchSpec) Adversary { return NewRewireForcer(spec) },
		"rewire-deny-all": func(_ Params, spec PatchSpec) Adversary {
			spec.Radius = -1
			return NewRewireDenier(spec)
		},
		// The combined patch attack: dig the hole and refill it with fake
		// leaders, both in the same ball, budget split between the halves
		// (alternating favor, so it works under K=1 pacing too).
		"patch-combo": func(_ Params, spec PatchSpec) Adversary {
			return adversary.NewPatchCombo(spec.Center, spec.Radius, nil)
		},
	}
}

// AdversaryNames lists the position-blind strategy names accepted by
// NewAdversaryByName, sorted.
func AdversaryNames() []string {
	m := adversaryFactories()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SpatialAdversaryNames lists the patch-family strategy names accepted by
// NewSpatialAdversaryByName, sorted.
func SpatialAdversaryNames() []string {
	m := spatialAdversaryFactories()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewAdversaryByName constructs a position-blind strategy from its CLI name.
func NewAdversaryByName(name string, p Params) (Adversary, error) {
	if f, ok := adversaryFactories()[name]; ok {
		return f(p), nil
	}
	return nil, fmt.Errorf("popstab: unknown adversary %q (available: %s)",
		name, strings.Join(AdversaryNames(), ", "))
}

// NewSpatialAdversaryByName constructs a patch-family strategy from its CLI
// name and patch ball. The strategies are safe to select on any topology:
// delete-patch degrades to uniform deletion, cluster-leader* to unplaced
// insertion, and the rewire strategies are inert off SmallWorld.
func NewSpatialAdversaryByName(name string, p Params, spec PatchSpec) (Adversary, error) {
	if f, ok := spatialAdversaryFactories()[name]; ok {
		return f(p, spec), nil
	}
	return nil, fmt.Errorf("popstab: unknown spatial adversary %q (available: %s)",
		name, strings.Join(SpatialAdversaryNames(), ", "))
}
