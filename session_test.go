package popstab

import (
	"bytes"
	"runtime"
	"testing"
)

// sessionSpecs are the snapshot/resume scenarios: each exercises a
// different combination of mutable per-run state — paced position-blind
// adversaries, spatial patch attacks with alternation state (patch-combo),
// adversarial rewiring with candidate targeting, and the rogue overlay's
// side-array and clustered-infiltration stream.
func sessionSpecs() map[string]Spec {
	return map[string]Spec{
		"mixed/greedy": {
			N: 4096, Tinner: 24, Seed: 11,
			Adversary: "greedy", K: 1, PerEpochBudget: 16,
		},
		"torus/patch-combo": {
			N: 4096, Tinner: 24, Seed: 12, Topology: "torus",
			Adversary: "patch-combo", Patch: &BallSpec{X: 0.5, Y: 0.5, R: 0.1},
			K: 1, PerEpochBudget: 24,
		},
		"smallworld/rewire-force+rogue-cluster": {
			N: 4096, Tinner: 24, Seed: 13, Topology: "smallworld",
			Adversary: "rewire-force", Patch: &BallSpec{X: 0.25, R: 0.05},
			Rogue: &RogueSpec{
				ReplicateEvery: 3, DetectProb: 1,
				InitialRogues: 16, RoguesPerEpoch: 4,
				Cluster: &BallSpec{X: 0.25, R: 0.05},
			},
		},
		"ring/delete-patch+rogue": {
			N: 4096, Tinner: 24, Seed: 14, Topology: "ring",
			Adversary: "delete-patch", Patch: &BallSpec{X: 0.75, R: 0.08},
			K: 1, PerEpochBudget: 16,
			Rogue: &RogueSpec{ReplicateEvery: 4, DetectProb: 0.9, InitialRogues: 8},
		},
	}
}

// TestSnapshotResumeBitIdentical is the golden session guarantee: Snapshot
// at an arbitrary (mid-epoch) round, Restore into a fresh
// process-equivalent session, continue — and the final state is
// bit-identical to the uninterrupted run, for Workers ∈ {1, 2, NumCPU} on
// BOTH sides of the boundary (Workers is a throughput knob, so the resumed
// half deliberately runs at a different worker count than the uninterrupted
// reference).
func TestSnapshotResumeBitIdentical(t *testing.T) {
	const (
		snapAt = 137 // mid-epoch for Tinner=24 (T=144)
		total  = 300
	)
	workerGrid := []int{1, 2, runtime.NumCPU()}
	for name, spec := range sessionSpecs() {
		t.Run(name, func(t *testing.T) {
			spec := spec
			// Uninterrupted reference at Workers=1.
			spec.Workers = 1
			ref, err := NewSessionFromSpec(spec)
			if err != nil {
				t.Fatalf("build reference: %v", err)
			}
			refStats := ref.Step(total)
			refSnap := ref.Snapshot()

			for _, w := range workerGrid {
				spec.Workers = w
				first, err := NewSessionFromSpec(spec)
				if err != nil {
					t.Fatalf("build (workers=%d): %v", w, err)
				}
				first.Step(snapAt)
				mid := first.Snapshot()

				// Resume at a different worker count than the first half
				// ran at, to prove the boundary is worker-invariant too.
				respec := spec
				respec.Workers = workerGrid[(indexOf(workerGrid, w)+1)%len(workerGrid)]
				resumed, err := RestoreSessionFromSpec(respec, mid)
				if err != nil {
					t.Fatalf("restore (workers=%d->%d): %v", w, respec.Workers, err)
				}
				if got := resumed.Stats().Round; got != snapAt {
					t.Fatalf("restored session at round %d, want %d", got, snapAt)
				}
				gotStats := resumed.Step(total - snapAt)
				if gotStats != refStats {
					t.Errorf("workers %d->%d: stats diverged after resume:\n got %+v\nwant %+v",
						w, respec.Workers, gotStats, refStats)
				}
				if !bytes.Equal(resumed.Snapshot(), refSnap) {
					t.Errorf("workers %d->%d: final snapshot differs from uninterrupted run",
						w, respec.Workers)
				}
			}
		})
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return 0
}

// TestSnapshotAtEveryPhase is the fuzz-style table over WHERE the snapshot
// is cut: boundary and mid-epoch rounds, pacing-period edges, and the round
// right after an epoch rollover — the cuts that exercise mid-epoch PerEpoch
// budget pacing, the SmallWorld rewire controller, and the rogue overlay's
// queued clustered placements. One configuration carries all three; every
// cut must resume bit-identically.
func TestSnapshotAtEveryPhase(t *testing.T) {
	spec := Spec{
		N: 4096, Tinner: 24, Seed: 21, // T = 144
		Topology:  "smallworld",
		Adversary: "rewire-deny", Patch: &BallSpec{X: 0.4, R: 0.06},
		K: 1, PerEpochBudget: 16, // pacing period 9: acts on rounds 0, 9, 18, …
		Rogue: &RogueSpec{
			ReplicateEvery: 3, DetectProb: 1,
			InitialRogues: 8, RoguesPerEpoch: 4,
			Cluster: &BallSpec{X: 0.4, R: 0.06},
		},
		Workers: 2,
	}
	const total = 300
	ref, err := NewSessionFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	refStats := ref.Step(total)
	refSnap := ref.Snapshot()

	cuts := []int{1, 8, 9, 10, 71, 143, 144, 145, 152, 287}
	for _, cut := range cuts {
		s, err := NewSessionFromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		s.Step(cut)
		resumed, err := RestoreSessionFromSpec(spec, s.Snapshot())
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := resumed.Step(total - cut); got != refStats {
			t.Errorf("cut %d: stats diverged:\n got %+v\nwant %+v", cut, got, refStats)
		}
		if !bytes.Equal(resumed.Snapshot(), refSnap) {
			t.Errorf("cut %d: final snapshot differs from uninterrupted run", cut)
		}
	}
}

// TestRestoreRejectsMismatch pins the identity checks: a snapshot only
// restores into a session built from the same configuration.
func TestRestoreRejectsMismatch(t *testing.T) {
	spec := Spec{N: 4096, Tinner: 24, Seed: 3}
	s, err := NewSessionFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(10)
	snap := s.Snapshot()

	bad := spec
	bad.Seed = 4
	if _, err := RestoreSessionFromSpec(bad, snap); err == nil {
		t.Error("restore with different seed succeeded, want error")
	}
	badTopo := spec
	badTopo.Topology = "torus"
	if _, err := RestoreSessionFromSpec(badTopo, snap); err == nil {
		t.Error("restore with different topology succeeded, want error")
	}
	badProto := spec
	badProto.Protocol = "attempt2"
	if _, err := RestoreSessionFromSpec(badProto, snap); err == nil {
		t.Error("restore with different protocol succeeded, want error")
	}
	badSelfish := spec
	badSelfish.Selfish = true
	if _, err := RestoreSessionFromSpec(badSelfish, snap); err == nil {
		t.Error("restore with selfish wrapper succeeded, want error")
	}
	badAdv := spec
	badAdv.Adversary = "greedy"
	badAdv.K = 0 // keep the engine's K identical; the strategy alone must be rejected
	if _, err := RestoreSessionFromSpec(badAdv, snap); err == nil {
		t.Error("restore with different adversary succeeded, want error")
	}

	// Patch geometry is part of the adversary fingerprint even though the
	// strategy NAME only carries the radius.
	pspec := spec
	pspec.Topology = "ring"
	pspec.Adversary = "delete-patch"
	pspec.Patch = &BallSpec{X: 0.2, R: 0.1}
	pspec.K = 2
	ps, err := NewSessionFromSpec(pspec)
	if err != nil {
		t.Fatal(err)
	}
	ps.Step(5)
	psnap := ps.Snapshot()
	badPatch := pspec
	badPatch.Patch = &BallSpec{X: 0.8, R: 0.1}
	if _, err := RestoreSessionFromSpec(badPatch, psnap); err == nil {
		t.Error("restore with shifted patch center succeeded, want error")
	}

	// Rogue parameter mismatches are caught by the overlay's fingerprint.
	rspec := spec
	rspec.Rogue = &RogueSpec{ReplicateEvery: 3, DetectProb: 1, InitialRogues: 4}
	rs, err := NewSessionFromSpec(rspec)
	if err != nil {
		t.Fatal(err)
	}
	rs.Step(5)
	rsnap := rs.Snapshot()
	badRogue := rspec
	badRogue.Rogue = &RogueSpec{ReplicateEvery: 4, DetectProb: 1, InitialRogues: 4}
	if _, err := RestoreSessionFromSpec(badRogue, rsnap); err == nil {
		t.Error("restore with different rogue replication rate succeeded, want error")
	}
	// Corruption: flip one byte in the middle.
	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := RestoreSessionFromSpec(spec, corrupt); err == nil {
		t.Error("restore of corrupted snapshot succeeded, want error")
	}
	if _, err := RestoreSessionFromSpec(spec, snap[:len(snap)-9]); err == nil {
		t.Error("restore of truncated snapshot succeeded, want error")
	}
}

// TestSpecHash pins the canonical-hash semantics the serving layer's dedupe
// cache relies on.
func TestSpecHash(t *testing.T) {
	base := Spec{N: 4096, Tinner: 24, Seed: 5}
	h1, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// Workers is a throughput knob: excluded from identity.
	w := base
	w.Workers = 7
	if h2, _ := w.Hash(); h2 != h1 {
		t.Error("Workers changed the spec hash")
	}

	// Defaults resolve: explicit canonical values hash like omitted ones.
	exp := base
	exp.Protocol = "paper"
	exp.Topology = "mixed"
	exp.Gamma = 0.25
	exp.Alpha = 0.5
	exp.MessageBits = 3
	exp.InitialSize = 4096
	exp.Adversary = "none"
	if h2, _ := exp.Hash(); h2 != h1 {
		t.Error("explicit defaults hash differently from omitted defaults")
	}

	// A stray patch ball on a position-blind strategy is inert: the
	// simulations are identical, so the hashes must be too.
	g1 := base
	g1.Adversary = "greedy"
	g1.K = 4
	g2 := g1
	g2.Patch = &BallSpec{X: 0.5, R: 0.1}
	hg1, _ := g1.Hash()
	if hg2, _ := g2.Hash(); hg2 != hg1 {
		t.Error("inert patch ball changed the hash of a position-blind adversary spec")
	}
	// On a spatial strategy the ball is live and must distinguish.
	s1 := base
	s1.Topology = "ring"
	s1.Adversary = "delete-patch"
	s1.K = 2
	s1.Patch = &BallSpec{X: 0.2, R: 0.1}
	s2 := s1
	s2.Patch = &BallSpec{X: 0.8, R: 0.1}
	hs1, _ := s1.Hash()
	if hs2, _ := s2.Hash(); hs2 == hs1 {
		t.Error("different patch centers hash identically on a spatial strategy")
	}

	// Real differences change the hash.
	for _, mut := range []func(*Spec){
		func(s *Spec) { s.Seed = 6 },
		func(s *Spec) { s.N = 16384 },
		func(s *Spec) { s.Topology = "ring" },
		func(s *Spec) { s.Adversary = "greedy"; s.K = 1 },
		func(s *Spec) { s.Rogue = &RogueSpec{ReplicateEvery: 3, DetectProb: 1} },
	} {
		m := base
		mut(&m)
		if h2, _ := m.Hash(); h2 == h1 {
			t.Errorf("mutated spec %+v hashes equal to base", m)
		}
	}

	if _, err := (Spec{N: 4096, Adversary: "no-such-strategy"}).Hash(); err == nil {
		t.Error("unknown adversary name hashed without error")
	}
}
