// Benchmarks regenerating every experiment row of the reproduction suite
// (one Benchmark per table in DESIGN.md §4 / EXPERIMENTS.md) plus simulator
// throughput benchmarks.
//
// Experiment benches run at Quick scale; each iteration executes the whole
// experiment and reports reproduced=1 on success. Regenerate the full-scale
// tables with: go run ./cmd/popbench -scale full
package popstab_test

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"popstab"
	"popstab/internal/agent"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/pool"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/sim"
	"popstab/internal/wire"
)

// benchExperiment runs one suite experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := popstab.RunExperiment(id, popstab.ExperimentConfig{
			Scale:   popstab.ScaleQuick,
			Seed:    uint64(7 + i),
			Workers: runtime.NumCPU(),
		})
		if err != nil {
			b.Fatal(err)
		}
		ok := 0.0
		if strings.HasPrefix(res.Verdict, "REPRODUCED") {
			ok = 1
		}
		b.ReportMetric(ok, "reproduced")
	}
}

// One benchmark per experiment row (E-series: paper claims).

func BenchmarkE1MainTheorem(b *testing.B)     { benchExperiment(b, "E1") }
func BenchmarkE2WrongRound(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3ActiveFraction(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4Recruitment(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5ColorBalance(b *testing.B)    { benchExperiment(b, "E5") }
func BenchmarkE6EpochDeviation(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkE7RestoringDrift(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8Recovery(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9Attempt1Fails(b *testing.B)   { benchExperiment(b, "E9") }
func BenchmarkE10Attempt2Walk(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11StrategySweep(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12KScaling(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13Resources(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14GammaSweep(b *testing.B)     { benchExperiment(b, "E14") }
func BenchmarkE15HighMemory(b *testing.B)     { benchExperiment(b, "E15") }
func BenchmarkE16Equilibrium(b *testing.B)    { benchExperiment(b, "E16") }
func BenchmarkE17RogueExtension(b *testing.B) { benchExperiment(b, "E17") }

// Ablation benches (A-series: design choices).

func BenchmarkA1NoRoundCheck(b *testing.B)    { benchExperiment(b, "A1") }
func BenchmarkA2ShortSubphase(b *testing.B)   { benchExperiment(b, "A2") }
func BenchmarkA3AdversaryTiming(b *testing.B) { benchExperiment(b, "A3") }
func BenchmarkA4Schedulers(b *testing.B)      { benchExperiment(b, "A4") }
func BenchmarkA5Geometric(b *testing.B)       { benchExperiment(b, "A5") }
func BenchmarkA6ClockDrift(b *testing.B)      { benchExperiment(b, "A6") }
func BenchmarkA7GeoAdversary(b *testing.B)    { benchExperiment(b, "A7") }
func BenchmarkA8Topology(b *testing.B)        { benchExperiment(b, "A8") }

// Simulator throughput: rounds and agent-steps per second across N.
// workers = 0 means runtime.NumCPU() (the engine default); the *Workers1
// variants pin the serial path so the parallel speedup is
// agentsteps/s(default) / agentsteps/s(Workers1) on a multi-core machine.

func benchRounds(b *testing.B, n, workers int, topo popstab.Topology) {
	b.Helper()
	s, err := popstab.New(popstab.Config{
		N: n, Tinner: 2 * logOf(n), Seed: 1, Workers: workers, Topology: topo,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		s.RunRound()
		steps += s.Size()
	}
	b.StopTimer()
	b.ReportMetric(float64(steps)/float64(b.N), "agents/round")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(steps)/sec, "agentsteps/s")
	}
}

func BenchmarkRoundN4096(b *testing.B)   { benchRounds(b, 4096, 0, popstab.Mixed) }
func BenchmarkRoundN16384(b *testing.B)  { benchRounds(b, 16384, 0, popstab.Mixed) }
func BenchmarkRoundN65536(b *testing.B)  { benchRounds(b, 65536, 0, popstab.Mixed) }
func BenchmarkRoundN262144(b *testing.B) { benchRounds(b, 262144, 0, popstab.Mixed) }

func BenchmarkRoundN1048576(b *testing.B) { benchRounds(b, 1048576, 0, popstab.Mixed) }

// N = 2²⁴: the target scale of the sharded apply/compaction work. The
// protocol needs N a power of four (even log N, DESIGN §2), so the first
// admissible size past 2²³ is 2²⁴ = 16777216. One round over 16M agents
// touches hundreds of MB of agent (and, on the torus, position) state, so
// this is a memory-bandwidth benchmark as much as a CPU one; keep b.N low
// (-benchtime 3x) outside dedicated perf runs.
func BenchmarkRoundN16777216(b *testing.B) { benchRounds(b, 16777216, 0, popstab.Mixed) }

func BenchmarkTorusRoundN1048576(b *testing.B)  { benchRounds(b, 1048576, 0, popstab.Torus) }
func BenchmarkTorusRoundN16777216(b *testing.B) { benchRounds(b, 16777216, 0, popstab.Torus) }

func BenchmarkRoundN65536Workers1(b *testing.B)   { benchRounds(b, 65536, 1, popstab.Mixed) }
func BenchmarkRoundN262144Workers1(b *testing.B)  { benchRounds(b, 262144, 1, popstab.Mixed) }
func BenchmarkRoundN1048576Workers1(b *testing.B) { benchRounds(b, 1048576, 1, popstab.Mixed) }

// benchTorusMatch measures the sharded spatial matching phase alone —
// grid bucketing + candidate search + greedy walk over a static uniform
// population — reporting matched-over agents per second. Compare default
// workers against the Workers1 variant for the pipeline's parallel
// speedup.
func benchTorusMatch(b *testing.B, n, workers int) {
	b.Helper()
	tor, err := match.NewTorus(1 / math.Sqrt(float64(n)))
	if err != nil {
		b.Fatal(err)
	}
	pop := population.New(n)
	tor.Bind(pop, prng.New(1))
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	tor.SetWorkers(workers)
	pl := pool.New(workers)
	defer pl.Close()
	tor.SetPool(pl)
	src := prng.New(2)
	var p match.Pairing
	p.SetPool(pl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tor.SampleMatch(pop, src, &p)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/sec, "agentsteps/s")
	}
}

func BenchmarkTorusMatchN1048576(b *testing.B)         { benchTorusMatch(b, 1048576, 0) }
func BenchmarkTorusMatchN1048576Workers1(b *testing.B) { benchTorusMatch(b, 1048576, 1) }

// BenchmarkTorusWalkClusteredN1048576 measures the matching phase when the
// whole population crowds into one small patch — cell occupancy blows past
// the speculative walk's density gate, so every walk must take the serial
// fallback. This is the workload that keeps the gate honest: if the gate
// ever mis-routes a dense population through speculation, the claim-array
// contention and repair pass show up here first.
func BenchmarkTorusWalkClusteredN1048576(b *testing.B) {
	const n = 1 << 20
	tor, err := match.NewTorus(1 / math.Sqrt(float64(n)))
	if err != nil {
		b.Fatal(err)
	}
	pop := population.New(n)
	tor.Bind(pop, prng.New(1))
	// Pile everyone into a radius-0.05 patch around the center: ~100
	// agents per grid cell, far beyond the gate's per-cell ceiling, while
	// the bounded candidate lists keep the serial walk linear.
	pos := tor.Positions().Slice()
	mut := prng.New(9)
	for i := range pos {
		pos[i] = tor.PatchPoint(population.Point{X: 0.5, Y: 0.5}, 0.05, mut)
	}
	workers := runtime.NumCPU()
	tor.SetWorkers(workers)
	pl := pool.New(workers)
	defer pl.Close()
	tor.SetPool(pl)
	src := prng.New(2)
	var p match.Pairing
	p.SetPool(pl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tor.SampleMatch(pop, src, &p)
	}
	b.StopTimer()
	st := tor.PipelineStats()
	if st.SpecWalks > 0 {
		b.Fatalf("density gate failed: %d of %d walks speculated on a clustered population", st.SpecWalks, st.Samples)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/sec, "agentsteps/s")
	}
}

// churnStepper is a synthetic apply-heavy program: each agent dies with
// probability 1/4 and splits with probability 1/4 every round, so about
// half the population turns over per round — the worst case for the
// sharded apply/compaction path (the real protocol churns a few percent).
// The process is critical (E[offspring] = 1), so the size random-walks
// around N without drifting over a benchmark's horizon.
type churnStepper struct{}

func (churnStepper) EpochLen() int              { return 1 }
func (churnStepper) Compose(*agent.State) uint8 { return 0 }
func (churnStepper) Decode(uint8) wire.Message  { return wire.Message{} }
func (churnStepper) Step(_ *agent.State, _ wire.Message, _ bool, src *prng.Source) population.Action {
	switch src.Uint64() % 4 {
	case 0:
		return population.ActDie
	case 1:
		return population.ActSplit
	default:
		return population.ActKeep
	}
}

// benchChurnRounds measures a round dominated by apply/compaction: compose
// and matching are trivial under churnStepper, so nearly all the time is
// the prefix-sum plan over ~n/2 deaths and ~n/2 births plus the tracker
// scatters.
func benchChurnRounds(b *testing.B, n, workers int) {
	b.Helper()
	p, err := params.Derive(n, params.WithTinner(2*logOf(n)))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sim.New(sim.Config{Params: p, Protocol: churnStepper{}, Seed: 1, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ReportAllocs()
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		eng.RunRound()
		steps += eng.Size()
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(steps)/sec, "agentsteps/s")
	}
}

func BenchmarkChurnRoundN1048576(b *testing.B)         { benchChurnRounds(b, 1048576, 0) }
func BenchmarkChurnRoundN1048576Workers1(b *testing.B) { benchChurnRounds(b, 1048576, 1) }
func BenchmarkChurnRoundN16777216(b *testing.B)        { benchChurnRounds(b, 16777216, 0) }

// BenchmarkEpochN4096 measures one full protocol epoch.
func BenchmarkEpochN4096(b *testing.B) {
	sim, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunEpoch()
	}
}

// BenchmarkAdversarialRoundN4096 measures a round including the adversary
// turn (view construction + budget accounting).
func BenchmarkAdversarialRoundN4096(b *testing.B) {
	sim, err := popstab.New(popstab.Config{
		N: 4096, Tinner: 24, Seed: 1,
		Adversary: popstab.NewGreedy(), K: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunRound()
	}
}

func logOf(n int) int {
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return lg
}
