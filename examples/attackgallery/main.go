// Attack gallery: every adversary strategy in the library against the
// paper's protocol at the tolerated budget, followed by the two §1.3.1
// attacks that destroy the Attempt 1 baseline — reproducing the paper's
// central comparison: the variance-encoded protocol has no special agents to
// assassinate, so the attacks that kill leader election bounce off.
//
//	go run ./examples/attackgallery
package main

import (
	"fmt"
	"log"

	"popstab"
)

const (
	n      = 4096
	tinner = 24
	epochs = 20
)

func main() {
	if err := gallery(); err != nil {
		log.Fatal(err)
	}
}

func gallery() error {
	probe, err := popstab.New(popstab.Config{N: n, Tinner: tinner, Seed: 1})
	if err != nil {
		return err
	}
	params := probe.Params()
	budget := params.MaxTolerableK()

	fmt.Printf("=== main protocol vs the strategy library (budget %d alterations/epoch) ===\n\n", budget)
	fmt.Printf("%-18s %10s %10s %9s\n", "strategy", "end size", "worst dev", "interval")
	for _, name := range popstab.AdversaryNames() {
		adv, err := popstab.NewAdversaryByName(name, params)
		if err != nil {
			return err
		}
		cfg := popstab.Config{N: n, Tinner: tinner, Seed: 1}
		if name != "none" {
			cfg.Adversary = adv
			cfg.K = 1
			cfg.PerEpochBudget = budget
		}
		sim, err := popstab.New(cfg)
		if err != nil {
			return err
		}
		worst := 0
		for i := 0; i < epochs; i++ {
			rep := sim.RunEpoch()
			for _, v := range []int{rep.MinSize, rep.MaxSize} {
				if d := abs(v - n); d > worst {
					worst = d
				}
			}
		}
		status := "held ✓"
		if !sim.InInterval() {
			status = "BROKEN"
		}
		fmt.Printf("%-18s %10d %10d %9s\n", name, sim.Size(), worst, status)
	}

	fmt.Printf("\n=== Attempt 1 (leader election baseline) vs its two killer attacks ===\n\n")
	if err := attempt1Arm("no adversary", popstab.Config{
		N: n, Tinner: tinner, Seed: 2, Protocol: popstab.Attempt1,
	}); err != nil {
		return err
	}
	// The facade pacing machinery works for any protocol; the dedicated
	// Attempt 1 attacks live in the experiment suite (E9). Here we show the
	// generic equivalents: inserting "heard a leader" state equals the
	// suppressor, deleting active agents equals the igniter.
	if err := attempt1Arm("insert heard-bit (suppressor analogue)", popstab.Config{
		N: n, Tinner: tinner, Seed: 2, Protocol: popstab.Attempt1,
		Adversary: popstab.NewFakeLeaderInserter(1), K: 1, PerEpochBudget: 8,
	}); err != nil {
		return err
	}
	if err := attempt1Arm("delete carriers (igniter analogue)", popstab.Config{
		N: n, Tinner: tinner, Seed: 2, Protocol: popstab.Attempt1,
		Adversary: popstab.NewLeaderKiller(), K: budget, PerEpochBudget: budget * 64,
	}); err != nil {
		return err
	}

	fmt.Println("\nthe full E9/E11 experiments (cmd/popbench -run E9,E11) quantify these runs.")
	return nil
}

func attempt1Arm(label string, cfg popstab.Config) error {
	sim, err := popstab.New(cfg)
	if err != nil {
		return err
	}
	start := sim.Size()
	for i := 0; i < epochs; i++ {
		sim.RunEpochs(1)
		if sim.Size() < n/2 || sim.Size() > 2*n {
			break
		}
	}
	fmt.Printf("%-40s %6d -> %6d", label, start, sim.Size())
	switch {
	case sim.Size() < n/2:
		fmt.Println("  COLLAPSED")
	case sim.Size() > 2*n:
		fmt.Println("  EXPLODED")
	default:
		fmt.Println("  stable")
	}
	return nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
