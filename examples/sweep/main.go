// Sweep: grid the matched fraction γ and the adversary budget, emitting a
// CSV of worst-case displacement — the raw material for tolerance heatmaps.
//
//	go run ./examples/sweep > sweep.csv
package main

import (
	"encoding/csv"
	"fmt"
	"log"
	"os"
	"strconv"

	"popstab"
)

const (
	n      = 4096
	tinner = 24
	epochs = 12
	seed   = 3
)

func main() {
	if err := sweep(); err != nil {
		log.Fatal(err)
	}
}

func sweep() error {
	gammas := []float64{0.1, 0.25, 0.5, 1.0}
	budgetsX := []int{0, 1, 4, 16} // multiples of N^(1/4)

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if err := w.Write([]string{"gamma", "budget_per_epoch", "worst_dev_frac", "end_size", "violated"}); err != nil {
		return err
	}

	for _, gamma := range gammas {
		for _, bx := range budgetsX {
			probe, err := popstab.New(popstab.Config{N: n, Tinner: tinner, Gamma: gamma, Seed: seed})
			if err != nil {
				return err
			}
			params := probe.Params()
			budget := bx * params.MaxTolerableK()

			cfg := popstab.Config{N: n, Tinner: tinner, Gamma: gamma, Seed: seed}
			if budget > 0 {
				cfg.Adversary = popstab.NewGreedy()
				cfg.K = 1
				cfg.PerEpochBudget = budget
			}
			sim, err := popstab.New(cfg)
			if err != nil {
				return err
			}
			worst := 0.0
			violated := false
			lo := int(float64(n) * (1 - params.Alpha))
			hi := int(float64(n) * (1 + params.Alpha))
			for i := 0; i < epochs; i++ {
				rep := sim.RunEpoch()
				for _, v := range []int{rep.MinSize, rep.MaxSize} {
					d := float64(v-n) / float64(n)
					if d < 0 {
						d = -d
					}
					if d > worst {
						worst = d
					}
				}
				if rep.MinSize < lo || rep.MaxSize > hi {
					violated = true
				}
			}
			if err := w.Write([]string{
				fmt.Sprintf("%.2f", gamma),
				strconv.Itoa(budget),
				fmt.Sprintf("%.5f", worst),
				strconv.Itoa(sim.Size()),
				strconv.FormatBool(violated),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}
