// Wound healing: the biological scenario from the paper's introduction — an
// organ (population of cells) suffers acute trauma losing a third of its
// cells, then regrows toward its target size through purely local decisions.
//
// The run uses γ = 1 (every cell interacts every round) so the regrowth is
// visible in a short demo; the restoring drift scales linearly in γ.
//
//	go run ./examples/woundhealing
package main

import (
	"fmt"
	"log"

	"popstab"
)

func main() {
	sim, err := popstab.New(popstab.Config{
		N:      4096,
		Tinner: 24,
		Gamma:  1.0,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	p := sim.Params()
	mStar := p.PredictedEquilibrium()

	fmt.Printf("tissue target: %d cells (homeostatic fixed point ≈ %d)\n\n", p.N, mStar)

	// Healthy phase.
	fmt.Println("healthy phase:")
	for i := 0; i < 5; i++ {
		rep := sim.RunEpoch()
		fmt.Printf("  epoch %3d: %5d cells\n", rep.Epoch, rep.EndSize)
	}

	// Acute trauma: lose half of all cells at once.
	wounded := sim.Size() / 2
	sim.Displace(wounded)
	fmt.Printf("\n*** trauma: tissue cut to %d cells ***\n\n", wounded)

	// Healing: run until the population regains 90% of the fixed point.
	fmt.Println("healing (sampled every 25 epochs):")
	target := mStar * 9 / 10
	healed := -1
	for ep := 0; ep < 1200; ep++ {
		rep := sim.RunEpoch()
		if ep%25 == 0 {
			fmt.Printf("  epoch %4d: %5d cells (%.0f%% of fixed point)\n",
				rep.Epoch, rep.EndSize, 100*float64(rep.EndSize)/float64(mStar))
		}
		if rep.EndSize >= target {
			healed = rep.Epoch
			fmt.Printf("  epoch %4d: %5d cells — healed to 90%% ✓\n", rep.Epoch, rep.EndSize)
			break
		}
	}
	if healed < 0 {
		fmt.Println("  healing incomplete within the demo horizon")
	}

	fmt.Printf("\nmechanism: each cell samples two random neighbors' colors per epoch;\n")
	fmt.Printf("fewer cells ⇒ fewer color clusters ⇒ more same-color meetings ⇒ more splits.\n")
	fmt.Printf("No cell ever counts the population — the size is read out of the variance\n")
	fmt.Printf("of the color distribution (Θ(log log N) bits of memory per cell).\n")
}
