// The popserve load smoke: boots the serving stack in-process (real HTTP
// over a loopback listener), drives many concurrent client sessions to
// completion, and verifies the result cache deduped identical submissions
// by the server's own run-count metric. CI runs it as the serve smoke; as a
// standalone example it doubles as API documentation in motion.
//
//	go run ./examples/serve -sessions 64 -distinct 8 -rounds 144
//
// With -addr it targets an already-running popserve instead of booting one.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"popstab"
	"popstab/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "serve-smoke:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("serve-smoke", flag.ContinueOnError)
	var (
		sessions = fs.Int("sessions", 64, "concurrent client sessions to drive")
		distinct = fs.Int("distinct", 8, "distinct configurations among them (seeds)")
		rounds   = fs.Int("rounds", 144, "rounds per session")
		n        = fs.Int("n", 4096, "population target N")
		pool     = fs.Int("pool", 0, "server worker-pool bound (0 = NumCPU)")
		addr     = fs.String("addr", "", "drive an external popserve at this base URL instead of booting in-process")
		timeout  = fs.Duration("timeout", 5*time.Minute, "overall deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *distinct < 1 || *sessions < *distinct {
		return fmt.Errorf("need sessions >= distinct >= 1 (got %d, %d)", *sessions, *distinct)
	}

	base := *addr
	if base == "" {
		m := serve.NewManager(serve.Config{MaxConcurrent: *pool, StepQuantum: 48})
		defer m.Close()
		ts := httptest.NewServer(serve.NewHandler(m))
		defer ts.Close()
		base = ts.URL
	}

	start := time.Now()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		ids      = map[string]int{} // session id -> submissions attached
		deduped  int
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for c := 0; c < *sessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			spec := popstab.Spec{N: *n, Tinner: 24, Seed: uint64(c % *distinct)}
			var sub serve.SubmitResponse
			if err := post(base, "/v1/sessions", serve.SubmitRequest{Spec: spec, Rounds: uint64(*rounds)}, &sub); err != nil {
				fail(fmt.Errorf("client %d submit: %w", c, err))
				return
			}
			mu.Lock()
			ids[sub.ID]++
			if sub.Deduped {
				deduped++
			}
			mu.Unlock()
			// Poll to completion.
			deadline := time.Now().Add(*timeout)
			for {
				var info serve.JobInfo
				if err := get(base, "/v1/sessions/"+sub.ID, &info); err != nil {
					fail(fmt.Errorf("client %d poll: %w", c, err))
					return
				}
				if info.Status == serve.StatusFailed {
					fail(fmt.Errorf("client %d: session failed: %s", c, info.Error))
					return
				}
				if info.Status == serve.StatusDone && info.Stats.Round >= uint64(*rounds) {
					return
				}
				if time.Now().After(deadline) {
					fail(fmt.Errorf("client %d: timeout at %+v", c, info.Stats))
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	var mt serve.Metrics
	if err := get(base, "/v1/metrics", &mt); err != nil {
		return err
	}
	fmt.Printf("drove %d sessions (%d distinct configs, %d rounds each) in %s\n",
		*sessions, *distinct, *rounds, time.Since(start).Round(time.Millisecond))
	fmt.Printf("server metrics: sim_runs=%d dedupe_hits=%d submissions=%d sessions=%d\n",
		mt.SimRuns, mt.DedupeHits, mt.Submissions, mt.Sessions)

	// The dedupe verdict (only meaningful against a fresh server).
	if *addr == "" {
		if len(ids) != *distinct {
			return fmt.Errorf("FAIL: %d underlying sessions for %d distinct configs", len(ids), *distinct)
		}
		if int(mt.SimRuns) != *distinct {
			return fmt.Errorf("FAIL: run-count metric %d, want %d (cache did not dedupe)", mt.SimRuns, *distinct)
		}
		if want := *sessions - *distinct; deduped != want {
			return fmt.Errorf("FAIL: %d submissions reported deduped, want %d", deduped, want)
		}
		fmt.Printf("PASS: result cache deduped %d identical submissions onto %d runs\n", deduped, mt.SimRuns)
	}
	return nil
}

// post sends JSON and decodes the JSON response, treating non-2xx as error.
func post(base, path string, body, out any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	return decode(resp, out)
}

// get fetches and decodes a JSON response, treating non-2xx as error.
func get(base, path string, out any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	return decode(resp, out)
}

func decode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e serve.ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("HTTP %d: %s: %s", resp.StatusCode, e.Error.Code, e.Error.Message)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
