// Counting: why the paper's problem is not just approximate counting.
//
// Morris counters [Mor78] count to N in Θ(log log N) bits — the technique
// the paper cites for the deletion-only setting (§1.4, §1.2). This example
// shows (1) the counter's accuracy/memory tradeoff working as advertised,
// and (2) the reason it cannot survive the paper's adversary: counters merge
// by register maximum, so one adversarially inserted agent carrying a
// fabricated register poisons the whole population's estimate.
//
//	go run ./examples/counting
package main

import (
	"fmt"
	"log"

	"popstab/internal/approxcount"
	"popstab/internal/prng"
)

func main() {
	if err := demo(); err != nil {
		log.Fatal(err)
	}
}

func demo() error {
	src := prng.New(1)

	fmt.Println("=== Morris counter: count 1e6 events in a handful of bits ===")
	fmt.Printf("%12s %12s %12s %8s\n", "true count", "estimate", "rel. error", "bits")
	var m approxcount.Morris
	next := 10
	for i := 1; i <= 1_000_000; i++ {
		m.Increment(src)
		if i == next {
			est := m.Estimate()
			fmt.Printf("%12d %12.0f %11.1f%% %8d\n",
				i, est, 100*(est-float64(i))/float64(i), m.Bits())
			next *= 10
		}
	}

	fmt.Println("\n=== Ensembles trade memory for accuracy ===")
	fmt.Printf("%10s %14s\n", "counters", "typical error")
	for _, k := range []int{1, 4, 16, 64} {
		var worst float64
		const trials = 40
		const n = 10000
		for t := 0; t < trials; t++ {
			e, err := approxcount.NewEnsemble(k)
			if err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				e.Increment(src)
			}
			err2 := (e.Estimate() - n) / n
			if err2 < 0 {
				err2 = -err2
			}
			worst += err2
		}
		fmt.Printf("%10d %13.1f%%\n", k, 100*worst/trials)
	}

	fmt.Println("\n=== The insertion attack: one fabricated register poisons every merge ===")
	honest, err := approxcount.NewEnsemble(8)
	if err != nil {
		return err
	}
	for i := 0; i < 5000; i++ {
		honest.Increment(src)
	}
	fmt.Printf("honest estimate after 5000 events: %.0f\n", honest.Estimate())

	// The model lets the adversary insert agents with ARBITRARY state —
	// including counter registers claiming 2^40 events.
	poison, err := approxcount.NewEnsemble(8)
	if err != nil {
		return err
	}
	approxcount.Poison(poison, 40)
	if err := honest.MergeMax(poison); err != nil {
		return err
	}
	fmt.Printf("after one gossip merge with a fabricated agent: %.0f (≈ 10^12)\n", honest.Estimate())
	fmt.Println("\nevery agent that later merges with the victim inherits the poison —")
	fmt.Println("this is why the paper's insertion adversary defeats counting-based")
	fmt.Println("protocols, and why the protocol encodes size in a *distribution*")
	fmt.Println("(color variance) that no single inserted agent can dominate.")
	return nil
}
