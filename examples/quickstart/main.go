// Quickstart: run the population stability protocol at N = 4096 with no
// adversary and watch the population hold its target across epochs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"popstab"
)

func main() {
	sim, err := popstab.New(popstab.Config{
		N:      4096,
		Tinner: 24, // shorter subphases (still ω(log N)) keep the demo fast
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}

	p := sim.Params()
	fmt.Printf("population stability: N=%d, epoch=%d rounds, clusters of √N=%d agents\n",
		p.N, p.T, p.ClusterSize)
	fmt.Printf("admissible interval: [%d, %d]\n\n",
		int(float64(p.N)*(1-p.Alpha)), int(float64(p.N)*(1+p.Alpha)))

	for i := 0; i < 15; i++ {
		rep := sim.RunEpoch()
		bar := populationBar(rep.EndSize, p.N)
		fmt.Printf("epoch %2d: size %5d  %s\n", rep.Epoch, rep.EndSize, bar)
	}

	c := sim.Counters()
	fmt.Printf("\nover the run: %d leaders elected, %d agents recruited, %d splits, %d deaths\n",
		c.Leaders, c.Recruits, c.EvalSplits, c.EvalDeaths)
	if sim.InInterval() {
		fmt.Println("the population stayed within the admissible interval ✓")
	}
}

// populationBar draws a crude gauge centered on the target.
func populationBar(size, n int) string {
	const width = 40
	pos := width/2 + (size-n)*width/(2*n)
	if pos < 0 {
		pos = 0
	}
	if pos >= width {
		pos = width - 1
	}
	bar := make([]byte, width)
	for i := range bar {
		bar[i] = '-'
	}
	bar[width/2] = '|'
	bar[pos] = '#'
	return string(bar)
}
