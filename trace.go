package popstab

import (
	"popstab/internal/trace"
)

// Tracing re-exports. A Recorder collects named time series (population per
// epoch, births, deaths, …) and exports them as CSV or JSON; cmd/popsim and
// examples/sweep build on it.
type (
	// TraceRecorder collects named series keyed by insertion order.
	TraceRecorder = trace.Recorder
	// TraceSeries is one named (x, y) sequence.
	TraceSeries = trace.Series
)

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// RecordEpochs runs n epochs on s, recording population/births/deaths series
// into rec (series names "population", "births", "deaths", keyed by epoch
// index), and returns the epoch reports.
func RecordEpochs(s *Sim, n int, rec *TraceRecorder) []EpochReport {
	reps := make([]EpochReport, 0, n)
	for i := 0; i < n; i++ {
		rep := s.RunEpoch()
		x := float64(rep.Epoch)
		rec.Record("population", x, float64(rep.EndSize))
		rec.Record("births", x, float64(rep.Births))
		rec.Record("deaths", x, float64(rep.Deaths))
		reps = append(reps, rep)
	}
	return reps
}
