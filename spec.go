package popstab

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"popstab/internal/params"
)

// BallSpec is the JSON form of a patch ball: center (X; Y on 2-D
// topologies) and radius (arc half-length in 1-D).
type BallSpec struct {
	X float64 `json:"x"`
	Y float64 `json:"y,omitempty"`
	R float64 `json:"r"`
}

// patch converts to the strategy-facing PatchSpec.
func (b BallSpec) patch() PatchSpec {
	return PatchSpec{Center: Point{X: b.X, Y: b.Y}, Radius: b.R}
}

// RogueSpec is the declarative form of RogueConfig.
type RogueSpec struct {
	ReplicateEvery int       `json:"replicate_every"`
	DetectProb     float64   `json:"detect_prob"`
	InitialRogues  int       `json:"initial_rogues,omitempty"`
	RoguesPerEpoch int       `json:"rogues_per_epoch,omitempty"`
	Cluster        *BallSpec `json:"cluster,omitempty"`
}

// Spec is the fully declarative, JSON-serializable form of Config: every
// axis is a value (strategy and protocol by registry name), so a Spec can
// cross a network or a process boundary and — unlike Config, which carries
// live Adversary/Scheduler objects — be canonically hashed. The serving
// layer (internal/serve) accepts Specs as job submissions and dedupes
// identical ones by Hash.
type Spec struct {
	// N is the population target (power of four, ≥ 4096).
	N int `json:"n"`
	// Tinner overrides the recruitment subphase length (0 = paper log²N).
	Tinner int `json:"tinner,omitempty"`
	// Gamma is the matched fraction per round (0 = 1/4).
	Gamma float64 `json:"gamma,omitempty"`
	// Alpha is the admissible half-width (0 = 1/2).
	Alpha float64 `json:"alpha,omitempty"`
	// Protocol selects the per-agent program by name: paper (default),
	// attempt1, attempt2, empty.
	Protocol string `json:"protocol,omitempty"`
	// Selfish wraps the protocol in the selfish-replicator variant.
	Selfish bool `json:"selfish,omitempty"`
	// MessageBits selects the wire codec: 3 (default) or 4.
	MessageBits int `json:"message_bits,omitempty"`
	// Topology selects the communication topology by name: mixed
	// (default), torus, grid, ring, smallworld.
	Topology string `json:"topology,omitempty"`
	// DaughterSpread scales daughter placement (spatial topologies; 0 = 1).
	DaughterSpread float64 `json:"daughter_spread,omitempty"`
	// RewireProb is the Watts-Strogatz β (SmallWorld; 0 = 0.1).
	RewireProb float64 `json:"rewire_prob,omitempty"`
	// Adversary selects a strategy by registry name (AdversaryNames or
	// SpatialAdversaryNames; empty = none). Patch parameterizes the
	// spatial family.
	Adversary string `json:"adversary,omitempty"`
	// Patch is the ball spatial strategies act on.
	Patch *BallSpec `json:"patch,omitempty"`
	// K is the adversary's per-round alteration budget.
	K int `json:"k,omitempty"`
	// PerEpochBudget paces the adversary to this many alterations per
	// epoch.
	PerEpochBudget int `json:"per_epoch_budget,omitempty"`
	// Rogue enables the malicious-program extension.
	Rogue *RogueSpec `json:"rogue,omitempty"`
	// InitialSize overrides the starting population (0 = N).
	InitialSize int `json:"initial_size,omitempty"`
	// Seed derives all randomness.
	Seed uint64 `json:"seed"`
	// Workers shards the engine's per-agent phases. It is a pure
	// throughput knob — output is bit-identical across worker counts — and
	// is therefore EXCLUDED from Hash: submissions differing only in
	// Workers are the same simulation.
	Workers int `json:"workers,omitempty"`
}

// Config materializes the spec into a Config with live strategy objects.
// Each call builds fresh objects, so two Sims never share adversary state.
func (sp Spec) Config() (Config, error) {
	proto, err := ProtocolKindFromString(sp.Protocol)
	if err != nil {
		return Config{}, err
	}
	topo, err := TopologyFromString(sp.Topology)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		N:              sp.N,
		Tinner:         sp.Tinner,
		Gamma:          sp.Gamma,
		Alpha:          sp.Alpha,
		Protocol:       proto,
		Selfish:        sp.Selfish,
		MessageBits:    sp.MessageBits,
		Topology:       topo,
		DaughterSpread: sp.DaughterSpread,
		RewireProb:     sp.RewireProb,
		K:              sp.K,
		PerEpochBudget: sp.PerEpochBudget,
		InitialSize:    sp.InitialSize,
		Seed:           sp.Seed,
		Workers:        sp.Workers,
	}
	if sp.Rogue != nil {
		rc := RogueConfig{
			ReplicateEvery: sp.Rogue.ReplicateEvery,
			DetectProb:     sp.Rogue.DetectProb,
			InitialRogues:  sp.Rogue.InitialRogues,
			RoguesPerEpoch: sp.Rogue.RoguesPerEpoch,
		}
		if sp.Rogue.Cluster != nil {
			c := sp.Rogue.Cluster.patch()
			rc.Cluster = &c
		}
		cfg.Rogue = &rc
	}
	if sp.Adversary != "" && sp.Adversary != "none" {
		p, err := sp.derive()
		if err != nil {
			return Config{}, err
		}
		var patch PatchSpec
		if sp.Patch != nil {
			patch = sp.Patch.patch()
		}
		adv, err := NewAdversaryByName(sp.Adversary, p)
		if err != nil {
			adv, err = NewSpatialAdversaryByName(sp.Adversary, p, patch)
		}
		if err != nil {
			return Config{}, fmt.Errorf("popstab: unknown adversary %q", sp.Adversary)
		}
		cfg.Adversary = adv
	}
	return cfg, nil
}

// derive computes the protocol parameterization the spec implies.
func (sp Spec) derive() (Params, error) {
	var opts []params.Option
	if sp.Tinner > 0 {
		opts = append(opts, params.WithTinner(sp.Tinner))
	}
	if sp.Gamma > 0 {
		opts = append(opts, params.WithGamma(sp.Gamma))
	}
	if sp.Alpha > 0 {
		opts = append(opts, params.WithAlpha(sp.Alpha))
	}
	return params.Derive(sp.N, opts...)
}

// Normalize resolves every defaulted field to its canonical value, so that
// two specs describing the same simulation normalize identically ("" and
// "paper" are the same protocol; Gamma 0 and 0.25 the same matching rate).
// It validates on the way: a spec that cannot build returns its error.
func (sp Spec) Normalize() (Spec, error) {
	p, err := sp.derive()
	if err != nil {
		return Spec{}, fmt.Errorf("popstab: %w", err)
	}
	// Config() rejects bad registry names.
	if _, err := sp.Config(); err != nil {
		return Spec{}, err
	}
	// Axis-combination conflicts are rejected here, not just at build time:
	// a spec that cannot run must not normalize (or hash — the serving
	// layer turns these into 422 invalid_spec at submission, before a
	// session is ever constructed). The checks mirror NewSession's.
	t, _ := TopologyFromString(sp.Topology)
	if t == Mixed && sp.DaughterSpread != 0 {
		return Spec{}, fmt.Errorf("popstab: DaughterSpread requires a spatial topology")
	}
	if sp.DaughterSpread < 0 {
		return Spec{}, fmt.Errorf("popstab: negative DaughterSpread %v", sp.DaughterSpread)
	}
	if sp.RewireProb != 0 && t != SmallWorld {
		return Spec{}, fmt.Errorf("popstab: RewireProb requires Topology: SmallWorld")
	}
	if sp.Rogue != nil && sp.Rogue.Cluster != nil && t == Mixed {
		return Spec{}, fmt.Errorf("popstab: Rogue.Cluster requires a spatial topology")
	}
	out := sp
	out.Tinner = p.Tinner
	out.Gamma = p.Gamma
	out.Alpha = p.Alpha
	kind, _ := ProtocolKindFromString(sp.Protocol)
	out.Protocol = kind.String()
	topo, _ := TopologyFromString(sp.Topology)
	out.Topology = topo.String()
	if out.MessageBits == 0 {
		out.MessageBits = 3
	}
	if topo != Mixed && out.DaughterSpread == 0 {
		out.DaughterSpread = 1
	}
	if topo == SmallWorld && out.RewireProb == 0 {
		out.RewireProb = 0.1
	}
	if out.Adversary == "" {
		out.Adversary = "none"
	}
	if out.Adversary == "none" {
		out.Patch = nil
		out.K = 0
		out.PerEpochBudget = 0
	} else if spatial := spatialAdversaryFactories(); spatial[out.Adversary] == nil {
		// Only the spatial family reads the patch ball; a stray Patch on a
		// position-blind strategy describes the identical simulation and
		// must hash identically.
		out.Patch = nil
	} else if out.Patch == nil {
		// Spatial strategy with the implicit zero ball: canonicalize so
		// nil and an explicit zero ball hash identically.
		out.Patch = &BallSpec{}
	}
	if out.InitialSize == 0 {
		out.InitialSize = sp.N
	}
	return out, nil
}

// Hash returns the canonical content address of the simulation the spec
// describes: a hex SHA-256 over the normalized spec with Workers cleared.
// Equal hashes mean bit-identical simulations (same trajectory, same
// stats), which is what lets the serving layer dedupe submissions.
func (sp Spec) Hash() (string, error) {
	norm, err := sp.Normalize()
	if err != nil {
		return "", err
	}
	norm.Workers = 0
	blob, err := json.Marshal(norm)
	if err != nil {
		return "", fmt.Errorf("popstab: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// NewSessionFromSpec materializes the spec and opens a session over it.
func NewSessionFromSpec(sp Spec) (*Session, error) {
	cfg, err := sp.Config()
	if err != nil {
		return nil, err
	}
	return NewSession(cfg)
}

// RestoreSessionFromSpec materializes the spec and restores a snapshot
// taken from a session of an equal spec (Workers may differ).
func RestoreSessionFromSpec(sp Spec, data []byte) (*Session, error) {
	cfg, err := sp.Config()
	if err != nil {
		return nil, err
	}
	return RestoreSession(cfg, data)
}
