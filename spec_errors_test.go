package popstab_test

import (
	"strings"
	"testing"

	"popstab"
)

// TestSpecNormalizeErrors tables the rejection surface of Spec.Normalize:
// bad registry names, out-of-range parameters, and axis combinations that
// could never build. Every case must fail at normalize (and therefore hash)
// time, so the serving layer can refuse the submission before a session is
// ever constructed.
func TestSpecNormalizeErrors(t *testing.T) {
	base := popstab.Spec{N: 4096, Tinner: 24, Seed: 7}
	cases := []struct {
		name string
		mut  func(*popstab.Spec)
		want string // substring of the error
	}{
		{"zero N", func(s *popstab.Spec) { s.N = 0 }, "N"},
		{"N below minimum", func(s *popstab.Spec) { s.N = 64 }, "N"},
		{"N not a power of four", func(s *popstab.Spec) { s.N = 5000 }, "N"},
		{"Gamma above one", func(s *popstab.Spec) { s.Gamma = 1.5 }, "gamma"},
		{"Alpha above half", func(s *popstab.Spec) { s.Alpha = 0.9 }, "alpha"},
		{"unknown protocol", func(s *popstab.Spec) { s.Protocol = "nope" }, "protocol"},
		{"unknown topology", func(s *popstab.Spec) { s.Topology = "klein-bottle" }, "topology"},
		{"unknown adversary", func(s *popstab.Spec) { s.Adversary = "mysterious" }, "adversary"},
		{"DaughterSpread on mixed", func(s *popstab.Spec) { s.DaughterSpread = 2 }, "DaughterSpread"},
		{"negative DaughterSpread", func(s *popstab.Spec) { s.Topology = "torus"; s.DaughterSpread = -1 }, "DaughterSpread"},
		{"RewireProb off smallworld", func(s *popstab.Spec) { s.Topology = "ring"; s.RewireProb = 0.2 }, "RewireProb"},
		{"rogue cluster on mixed", func(s *popstab.Spec) {
			s.Rogue = &popstab.RogueSpec{ReplicateEvery: 4, DetectProb: 1, Cluster: &popstab.BallSpec{R: 0.1}}
		}, "Rogue.Cluster"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := base
			tc.mut(&sp)
			if _, err := sp.Normalize(); err == nil {
				t.Fatalf("Normalize accepted %+v", sp)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Normalize error %q does not mention %q", err, tc.want)
			}
			// Hash goes through Normalize, so the spec must not hash either:
			// an unbuildable spec has no content address.
			if h, err := sp.Hash(); err == nil {
				t.Errorf("Hash accepted the spec: %s", h)
			}
		})
	}
}

// TestSpecNormalizeAcceptsResolvedConflicts pins the complement: the same
// axis values are fine on topologies that support them.
func TestSpecNormalizeAcceptsResolvedConflicts(t *testing.T) {
	cases := []popstab.Spec{
		{N: 4096, Tinner: 24, Seed: 7, Topology: "torus", DaughterSpread: 2},
		{N: 4096, Tinner: 24, Seed: 7, Topology: "smallworld", RewireProb: 0.2},
		{N: 4096, Tinner: 24, Seed: 7, Topology: "grid",
			Rogue: &popstab.RogueSpec{ReplicateEvery: 4, DetectProb: 1, Cluster: &popstab.BallSpec{X: 0.5, Y: 0.5, R: 0.1}}},
	}
	for _, sp := range cases {
		if _, err := sp.Normalize(); err != nil {
			t.Errorf("Normalize rejected %+v: %v", sp, err)
		}
	}
}
