package popstab

import (
	"fmt"

	"popstab/internal/experiment"
)

// Experiment re-exports for the reproduction suite (DESIGN.md §4,
// EXPERIMENTS.md).
type (
	// ExperimentResult is the rendered outcome of one experiment.
	ExperimentResult = experiment.Result
	// ResultTable is one rendered block of rows within an ExperimentResult.
	ResultTable = experiment.Table
	// ExperimentConfig parameterizes a suite run.
	ExperimentConfig = experiment.Config
)

// Experiment scales.
const (
	// ScaleQuick runs each experiment in seconds (tests, benches).
	ScaleQuick = experiment.Quick
	// ScaleFull regenerates EXPERIMENTS.md (minutes).
	ScaleFull = experiment.Full
)

// ExperimentIDs lists the suite's experiment identifiers in order.
func ExperimentIDs() []string {
	all := experiment.All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// ExperimentInfo describes one experiment without running it.
func ExperimentInfo(id string) (title, claim string, err error) {
	e, ok := experiment.Lookup(id)
	if !ok {
		return "", "", fmt.Errorf("popstab: unknown experiment %q", id)
	}
	return e.Title, e.Claim, nil
}

// RunExperiment executes one experiment of the reproduction suite.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentResult, error) {
	e, ok := experiment.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("popstab: unknown experiment %q", id)
	}
	res, err := e.Execute(cfg)
	if err != nil {
		return nil, fmt.Errorf("popstab: %w", err)
	}
	return res, nil
}
