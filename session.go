package popstab

import (
	"fmt"

	"popstab/internal/wire"
)

// SessionStats is the cumulative, JSON-serializable summary of a running
// Session — what the serving layer streams per step and reports on query.
// All counters accumulate from the session's start (or, after a restore,
// from the ORIGINAL session's start: the totals ride the snapshot).
type SessionStats struct {
	// Round is the number of completed rounds.
	Round uint64 `json:"round"`
	// Epoch is the current epoch index.
	Epoch int `json:"epoch"`
	// Size is the current population size.
	Size int `json:"size"`
	// InInterval reports whether Size lies in [(1−α)N, (1+α)N].
	InInterval bool `json:"in_interval"`
	// Births, Deaths, and Kills are cumulative protocol event counts
	// (Kills counts neighbor-removals, also included in Deaths).
	Births uint64 `json:"births"`
	Deaths uint64 `json:"deaths"`
	Kills  uint64 `json:"kills,omitempty"`
	// AdvInserted and AdvDeleted are the adversary's cumulative
	// alterations.
	AdvInserted uint64 `json:"adv_inserted,omitempty"`
	AdvDeleted  uint64 `json:"adv_deleted,omitempty"`
	// Honest and Rogues split Size by program under the malicious-program
	// extension (Honest = Size without it).
	Honest int `json:"honest"`
	Rogues int `json:"rogues,omitempty"`
}

// Session is a steppable simulation: the round loop inverted into an object
// the caller drives. Where Sim.RunEpochs owns the loop until it returns, a
// Session advances in caller-chosen increments and can be paused,
// serialized (Snapshot), shipped across processes, and resumed
// (RestoreSession) with a bit-identical continuation — the seam the serving
// layer (internal/serve, cmd/popserve) multiplexes many simulations
// through. Not safe for concurrent use; callers serialize access.
type Session struct {
	sim *Sim
	cum SessionStats
}

// NewSession builds a session over a fresh simulation of cfg.
func NewSession(cfg Config) (*Session, error) {
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	s := &Session{sim: sim}
	s.refresh()
	return s, nil
}

// Sim exposes the underlying simulation (owned by the session).
func (s *Session) Sim() *Sim { return s.sim }

// refresh recomputes the derived (non-accumulated) stats fields.
func (s *Session) refresh() {
	s.cum.Round = s.sim.GlobalRound()
	s.cum.Epoch = int(s.cum.Round / uint64(s.sim.EpochLen()))
	s.cum.Size = s.sim.Size()
	s.cum.InInterval = s.sim.InInterval()
	s.cum.Honest, s.cum.Rogues = s.sim.RogueCounts()
}

// Step advances the session by n rounds (no-op for n <= 0) and returns the
// updated cumulative stats.
func (s *Session) Step(n int) SessionStats {
	for i := 0; i < n; i++ {
		rep := s.sim.RunRound()
		s.cum.Births += uint64(rep.Births)
		s.cum.Deaths += uint64(rep.Deaths)
		s.cum.Kills += uint64(rep.Kills)
		s.cum.AdvInserted += uint64(rep.AdvInserted)
		s.cum.AdvDeleted += uint64(rep.AdvDeleted)
	}
	s.refresh()
	return s.cum
}

// StepEpoch advances to the next epoch boundary (a full epoch when already
// at one) and returns the updated cumulative stats.
func (s *Session) StepEpoch() SessionStats {
	t := uint64(s.sim.EpochLen())
	n := int(t - s.sim.GlobalRound()%t)
	return s.Step(n)
}

// Stats returns the cumulative stats without advancing.
func (s *Session) Stats() SessionStats { return s.cum }

// RoundStats reports the engine's cumulative per-phase cost counters (see
// Sim.RoundStats). Deliberately NOT part of SessionStats or the session
// snapshot: timings are host-local observability, while stats and snapshots
// are deterministic simulation content compared bit-for-bit across hosts by
// the federation failover tests.
func (s *Session) RoundStats() RoundStats { return s.sim.RoundStats() }

// Close releases the session's worker-pool goroutines (see Sim.Close). The
// session stays usable; idempotent. The job server closes sessions it
// hibernates or garbage-collects so parked pool goroutines don't outlive
// the session's residency.
func (s *Session) Close() { s.sim.Close() }

// sessionTag frames the session layer's snapshot section; the engine
// document is nested inside it as a byte string.
const sessionTag uint32 = 100

// Snapshot serializes the session — the cumulative counters plus the full
// engine state (see internal/sim's snapshot documentation for exactly what
// that captures). The bytes restore with RestoreSession into a session
// built from the same Config, continuing bit-identically at any worker
// count.
func (s *Session) Snapshot() []byte {
	enc := wire.NewEnc()
	enc.Begin(sessionTag)
	enc.U64(s.cum.Births)
	enc.U64(s.cum.Deaths)
	enc.U64(s.cum.Kills)
	enc.U64(s.cum.AdvInserted)
	enc.U64(s.cum.AdvDeleted)
	enc.Bytes(s.sim.Snapshot())
	enc.End()
	return enc.Finish()
}

// RestoreSession rebuilds a session from cfg and reinstates a snapshot
// taken by Session.Snapshot on a session built from the same Config
// (Workers may differ: it is a throughput knob, invisible to the
// trajectory).
func RestoreSession(cfg Config, data []byte) (*Session, error) {
	s, err := NewSession(cfg)
	if err != nil {
		return nil, err
	}
	d, err := wire.NewDec(data)
	if err != nil {
		return nil, fmt.Errorf("popstab: %w", err)
	}
	d.Begin(sessionTag)
	s.cum.Births = d.U64()
	s.cum.Deaths = d.U64()
	s.cum.Kills = d.U64()
	s.cum.AdvInserted = d.U64()
	s.cum.AdvDeleted = d.U64()
	engineBlob := d.Bytes()
	d.End()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("popstab: %w", err)
	}
	if err := s.sim.Restore(engineBlob); err != nil {
		return nil, err
	}
	s.refresh()
	return s, nil
}

// Snapshot serializes the simulation's full mutable state; see
// Session.Snapshot for the session-level form the serving layer uses.
func (s *Sim) Snapshot() []byte { return s.eng.Snapshot() }

// Restore reinstates a snapshot taken by Sim.Snapshot on a simulation built
// from the same Config. On error the Sim must be discarded.
func (s *Sim) Restore(data []byte) error { return s.eng.Restore(data) }
