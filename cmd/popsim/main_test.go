package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunMinimal(t *testing.T) {
	err := run([]string{"-n", "4096", "-tinner", "24", "-epochs", "1", "-q"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithAdversaryAndCSV(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "trace.csv")
	err := run([]string{"-n", "4096", "-tinner", "24", "-epochs", "1", "-q",
		"-adv", "greedy", "-budget", "4", "-csv", csv})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty CSV trace")
	}
}

func TestRunBaselineProtocol(t *testing.T) {
	if err := run([]string{"-n", "4096", "-tinner", "24", "-epochs", "1", "-q",
		"-protocol", "attempt2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunListAdversaries(t *testing.T) {
	if err := run([]string{"-list-adv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTorusTopology(t *testing.T) {
	if err := run([]string{"-n", "4096", "-tinner", "24", "-epochs", "1", "-q",
		"-topology", "torus", "-adv", "greedy", "-budget", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRogueExtension(t *testing.T) {
	if err := run([]string{"-n", "4096", "-tinner", "24", "-epochs", "1", "-q",
		"-rogues", "16", "-rogue-every", "12"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRogueOnTorus(t *testing.T) {
	if err := run([]string{"-n", "4096", "-tinner", "24", "-epochs", "1", "-q",
		"-topology", "torus", "-rogues", "16", "-rogue-every", "12"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-n", "1000"},                                      // invalid N
		{"-adv", "bogus"},                                   // unknown adversary
		{"-protocol", "bogus"},                              // unknown protocol
		{"-n", "4096", "-bits", "7"},                        // unsupported codec
		{"-gamma", "3"},                                     // invalid gamma
		{"-topology", "moebius"},                            // unknown topology
		{"-n", "4096", "-rewire", "0.3"},                    // rewire without smallworld topology
		{"-n", "4096", "-rogues", "-1"},                     // negative rogues... parsed but rejected downstream
		{"-n", "4096", "-spread", "0.5"},                    // spread without torus topology
		{"-n", "4096", "-rogues", "4", "-rogue-every", "0"}, // invalid period
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
