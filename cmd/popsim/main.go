// Command popsim runs a single population stability simulation and prints a
// per-epoch summary (optionally a CSV trace for plotting).
//
// Examples:
//
//	popsim -n 4096 -epochs 20
//	popsim -n 16384 -adv greedy -budget 16 -epochs 40
//	popsim -n 4096 -protocol attempt2 -epochs 10 -csv trace.csv
//	popsim -n 4096 -topology torus -adv greedy -budget 16 -epochs 10
//	popsim -n 4096 -topology smallworld -rewire 0.3 -epochs 10
//	popsim -n 4096 -rogues 64 -rogue-every 12 -epochs 5
//	popsim -n 4096 -topology ring -rogues 64 -rogue-every 12 -epochs 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"popstab"
	"popstab/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("popsim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 4096, "population target N (power of four, >= 4096)")
		tinner   = fs.Int("tinner", 0, "recruitment subphase length (0 = paper default log^2 N)")
		gamma    = fs.Float64("gamma", 0, "matched fraction per round (0 = 0.25)")
		alpha    = fs.Float64("alpha", 0, "interval half-width (0 = 0.5)")
		epochs   = fs.Int("epochs", 20, "number of epochs to run")
		seed     = fs.Uint64("seed", 1, "PRNG seed")
		proto    = fs.String("protocol", "paper", "protocol: paper|attempt1|attempt2|empty")
		advName  = fs.String("adv", "none", "adversary strategy (see -list-adv)")
		budget   = fs.Int("budget", 0, "adversary alterations per epoch (0 = N^(1/4))")
		k        = fs.Int("k", 1, "adversary per-round cap K")
		bits     = fs.Int("bits", 3, "message codec width: 3 or 4")
		topo     = fs.String("topology", "mixed", "communication topology: mixed|torus|grid|ring|smallworld")
		spread   = fs.Float64("spread", 0, "daughter spread as a fraction of the mean inter-agent spacing (0 = 1.0; spatial topologies)")
		rewire   = fs.Float64("rewire", 0, "Watts-Strogatz rewiring probability (0 = 0.1; smallworld only)")
		rogues   = fs.Int("rogues", 0, "initial rogue agents (enables the malicious-program extension)")
		rogueEv  = fs.Int("rogue-every", 12, "rogue replication period R (rounds)")
		rogueDet = fs.Float64("rogue-detect", 1, "honest per-contact detection probability")
		roguePE  = fs.Int("rogues-per-epoch", 0, "rogues infiltrated at every epoch boundary")
		csvPath  = fs.String("csv", "", "write a per-epoch CSV trace to this file")
		listAdv  = fs.Bool("list-adv", false, "list adversary strategies and exit")
		quietRun = fs.Bool("q", false, "suppress the per-epoch table")
		stats    = fs.Bool("stats", false, "print the engine's per-phase round cost breakdown after the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listAdv {
		for _, name := range popstab.AdversaryNames() {
			fmt.Println(name)
		}
		return nil
	}

	kind, err := popstab.ProtocolKindFromString(*proto)
	if err != nil {
		return err
	}
	topology, err := popstab.TopologyFromString(*topo)
	if err != nil {
		return err
	}
	cfg := popstab.Config{
		N:              *n,
		Tinner:         *tinner,
		Gamma:          *gamma,
		Alpha:          *alpha,
		Protocol:       kind,
		MessageBits:    *bits,
		Topology:       topology,
		DaughterSpread: *spread,
		Seed:           *seed,
	}
	if topology == popstab.SmallWorld {
		cfg.RewireProb = *rewire
	} else if *rewire != 0 {
		return fmt.Errorf("-rewire requires -topology smallworld")
	}
	if *rogues != 0 || *roguePE != 0 {
		cfg.Rogue = &popstab.RogueConfig{
			ReplicateEvery: *rogueEv,
			DetectProb:     *rogueDet,
			InitialRogues:  *rogues,
			RoguesPerEpoch: *roguePE,
		}
	}
	// Derive params first so adversaries can use the geometry.
	probe, err := popstab.New(cfg)
	if err != nil {
		return err
	}
	params := probe.Params()
	if *advName != "none" {
		adv, err := popstab.NewAdversaryByName(*advName, params)
		if err != nil {
			return err
		}
		cfg.Adversary = adv
		cfg.K = *k
		cfg.PerEpochBudget = *budget
		if cfg.PerEpochBudget == 0 {
			cfg.PerEpochBudget = params.MaxTolerableK()
		}
	}
	s, err := popstab.New(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("# %s protocol=%s topology=%s adversary=%s budget=%s seed=%d\n",
		params, kind, topology, *advName, budgetString(cfg.PerEpochBudget), *seed)
	if cfg.Rogue != nil {
		fmt.Printf("# rogue extension: initial=%d per-epoch=%d R=%d detect=%.2f\n",
			cfg.Rogue.InitialRogues, cfg.Rogue.RoguesPerEpoch,
			cfg.Rogue.ReplicateEvery, cfg.Rogue.DetectProb)
	}

	rec := trace.NewRecorder()
	if !*quietRun {
		fmt.Printf("%6s  %7s  %7s  %7s  %7s  %6s  %6s  %6s  %6s\n",
			"epoch", "start", "end", "min", "max", "births", "deaths", "advIns", "advDel")
	}
	for i := 0; i < *epochs; i++ {
		rep := s.RunEpoch()
		rec.Record("population", float64(rep.Epoch), float64(rep.EndSize))
		rec.Record("births", float64(rep.Epoch), float64(rep.Births))
		rec.Record("deaths", float64(rep.Epoch), float64(rep.Deaths))
		if !*quietRun {
			fmt.Printf("%6d  %7d  %7d  %7d  %7d  %6d  %6d  %6d  %6d\n",
				rep.Epoch, rep.StartSize, rep.EndSize, rep.MinSize, rep.MaxSize,
				rep.Births, rep.Deaths, rep.AdvInserted, rep.AdvDeleted)
		}
	}

	in := "INSIDE"
	if !s.InInterval() {
		in = "OUTSIDE"
	}
	fmt.Printf("# final population %d — %s [(1−α)N, (1+α)N] = [%d, %d]\n",
		s.Size(),
		in,
		int(float64(params.N)*(1-params.Alpha)),
		int(float64(params.N)*(1+params.Alpha)))
	if c := s.Counters(); c != nil {
		fmt.Printf("# protocol counters: %s\n", c)
	}
	if cfg.Rogue != nil {
		honest, rg := s.RogueCounts()
		st := s.RogueStats()
		fmt.Printf("# rogue extension: honest=%d rogues=%d kills=%d rogueSplits=%d missedDetections=%d\n",
			honest, rg, st.RogueKills, st.RogueSplits, st.FailedDetections)
	}
	if *stats {
		fmt.Println("# " + strings.ReplaceAll(s.RoundStats().Breakdown(), "\n", "\n# "))
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", *csvPath)
	}
	return nil
}

func budgetString(b int) string {
	if b == 0 {
		return "none"
	}
	return fmt.Sprintf("%d/epoch", b)
}
