package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// perfWarnFraction is the relative agentsteps/s drop beyond which -diff
// emits a perf warning (warn-only: wall-clock differs across machines, so
// throughput can never be a hard gate the way verdicts are).
const perfWarnFraction = 0.20

// Allocation warnings fire when a workload's per-round heap traffic grows
// more than allocWarnFraction above the baseline AND clears the noise
// floors. The floors matter: the steady state is supposed to allocate
// almost nothing per round, so tiny baselines (a handful of allocations
// from timer/runtime noise) would otherwise make the relative test fire on
// jitter. Unlike wall time, allocation counts are machine-independent, so
// a genuine increase is a real code change — but it is still warn-only
// because baselines recorded before these fields existed carry zeros.
const (
	allocWarnFraction = 0.20
	allocsNoiseFloor  = 16.0    // allocs/round below this are ignored
	bytesNoiseFloor   = 65536.0 // bytes/round below this are ignored
)

// Conflict-rate warnings guard the speculative greedy walk: the rate is a
// pure function of the seeded workload (machine-independent, like allocation
// counts), so growth means a code change shifted candidate overlap or the
// claim heuristic — eroding the walk's parallel scaling long before wall
// time shows it on a small CI box. Warn-only, because baselines recorded
// before the field existed carry zeros.
const (
	conflictWarnFraction = 0.20  // relative growth over a measurable baseline
	conflictNoiseFloor   = 0.005 // rates below this are jitter on tiny deltas
	conflictAbsCeiling   = 0.05  // absolute rate that warns even from a ~0 baseline
)

// loadReport parses one -json document from disk.
func loadReport(path string) (*jsonReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: not a popbench -json document: %w", path, err)
	}
	if rep.SchemaVersion < 1 || len(rep.Experiments) == 0 {
		return nil, fmt.Errorf("%s: not a popbench -json document (schema %d, %d experiments)",
			path, rep.SchemaVersion, len(rep.Experiments))
	}
	return &rep, nil
}

// runDiff compares two -json documents and writes a human-readable summary
// to w. It returns an error — failing the build — when an experiment that
// reproduced in the old document no longer reproduces in the new one (or
// disappeared from it); agentsteps/s drops beyond perfWarnFraction are
// reported as warnings only.
func runDiff(w io.Writer, oldPath, newPath string) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	if oldRep.Scale != newRep.Scale || oldRep.Seed != newRep.Seed {
		fmt.Fprintf(w, "note: comparing scale=%s seed=%d against scale=%s seed=%d\n",
			oldRep.Scale, oldRep.Seed, newRep.Scale, newRep.Seed)
	}

	newByID := map[string]jsonExperiment{}
	for _, e := range newRep.Experiments {
		newByID[e.ID] = e
	}
	oldByID := map[string]jsonExperiment{}
	for _, e := range oldRep.Experiments {
		oldByID[e.ID] = e
	}

	// Experiments present only in the new document are reported as "added"
	// — informational, never a failure: a PR that introduces an experiment
	// should not need a baseline refresh to merge, and an added DEVIATION
	// is the new experiment's own problem (popbench -json already exits
	// non-zero on it), not a regression of the baseline.
	var regressions, fixed, added []string
	for _, oldE := range oldRep.Experiments {
		newE, ok := newByID[oldE.ID]
		if !ok {
			if oldE.Reproduced {
				regressions = append(regressions,
					fmt.Sprintf("%s (%s): reproduced before, missing from the new run", oldE.ID, oldE.Title))
			}
			continue
		}
		switch {
		case oldE.Reproduced && !newE.Reproduced:
			regressions = append(regressions,
				fmt.Sprintf("%s (%s): REPRODUCED -> %s", newE.ID, newE.Title, newE.Verdict))
		case !oldE.Reproduced && newE.Reproduced:
			fixed = append(fixed, newE.ID)
		}
	}
	for _, newE := range newRep.Experiments {
		if _, ok := oldByID[newE.ID]; !ok {
			status := "DEVIATION"
			if newE.Reproduced {
				status = "reproduced"
			}
			added = append(added, fmt.Sprintf("%s (%s)", newE.ID, status))
		}
	}

	fmt.Fprintf(w, "verdicts: %d compared, %d regressed, %d fixed, %d added\n",
		len(oldRep.Experiments), len(regressions), len(fixed), len(added))
	for _, id := range fixed {
		fmt.Fprintf(w, "  fixed: %s now reproduces\n", id)
	}
	for _, a := range added {
		fmt.Fprintf(w, "  added: %s (informational; refresh the baseline to start gating it)\n", a)
	}

	warnings := diffBenchmarks(w, oldRep.Benchmarks, newRep.Benchmarks)
	for _, warn := range warnings {
		fmt.Fprintf(w, "WARNING: %s\n", warn)
	}

	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(w, "REGRESSION: %s\n", r)
		}
		return fmt.Errorf("%d experiment verdict regression(s)", len(regressions))
	}
	fmt.Fprintln(w, "no verdict regressions")
	return nil
}

// diffBenchmarks compares agentsteps/s by benchmark name and returns the
// warning lines for drops beyond perfWarnFraction.
func diffBenchmarks(w io.Writer, oldB, newB []jsonBenchmark) []string {
	if len(oldB) == 0 {
		return nil
	}
	if len(newB) == 0 {
		// The baseline tracks throughput but the new run carries none
		// (e.g. the -bench flag was dropped from CI): say so, or the perf
		// gate dies silently.
		return []string{"baseline has benchmarks but the new run has none (was -bench dropped?)"}
	}
	newByName := map[string]jsonBenchmark{}
	for _, b := range newB {
		newByName[b.Name] = b
	}
	var warnings []string
	for _, ob := range oldB {
		nb, ok := newByName[ob.Name]
		if !ok {
			warnings = append(warnings,
				fmt.Sprintf("benchmark %s missing from the new run", ob.Name))
			continue
		}
		if ob.AgentStepsPerSec <= 0 {
			continue
		}
		ratio := nb.AgentStepsPerSec / ob.AgentStepsPerSec
		fmt.Fprintf(w, "bench %-24s %14.0f -> %14.0f agentsteps/s (%+.1f%%)\n",
			ob.Name, ob.AgentStepsPerSec, nb.AgentStepsPerSec, (ratio-1)*100)
		if nb.WalkNSPerRound > 0 {
			fmt.Fprintf(w, "      %-24s phases/round: bucket %s scatter %s cand %s walk %s  conflict %.4f -> %.4f\n",
				"", fmtNS(nb.BucketNSPerRound), fmtNS(nb.ScatterNSPerRound),
				fmtNS(nb.CandNSPerRound), fmtNS(nb.WalkNSPerRound),
				ob.WalkConflictRate, nb.WalkConflictRate)
		}
		if ratio < 1-perfWarnFraction {
			warnings = append(warnings, fmt.Sprintf(
				"benchmark %s agentsteps/s dropped %.1f%% (%.0f -> %.0f); investigate before merging",
				ob.Name, (1-ratio)*100, ob.AgentStepsPerSec, nb.AgentStepsPerSec))
		}
		warnings = append(warnings,
			allocWarning(ob.Name, "allocs/round", ob.AllocsPerRound, nb.AllocsPerRound, allocsNoiseFloor)...)
		warnings = append(warnings,
			allocWarning(ob.Name, "bytes/round", ob.BytesPerRound, nb.BytesPerRound, bytesNoiseFloor)...)
		warnings = append(warnings,
			conflictWarning(ob.Name, ob.WalkConflictRate, nb.WalkConflictRate)...)
	}
	return warnings
}

// allocWarning reports a per-round allocation regression for one metric,
// or nothing when the change is under allocWarnFraction, under the noise
// floor, or the baseline predates the metric (old == 0).
func allocWarning(name, metric string, old, cur, floor float64) []string {
	if old <= 0 || cur <= floor {
		return nil
	}
	if cur/old <= 1+allocWarnFraction {
		return nil
	}
	return []string{fmt.Sprintf(
		"benchmark %s %s grew %.0f%% (%.0f -> %.0f); per-round garbage crept back in — investigate before merging",
		name, metric, (cur/old-1)*100, old, cur)}
}

// conflictWarning reports a speculative-walk conflict-rate regression: from
// a measurable baseline, relative growth beyond conflictWarnFraction; from a
// zero/noise baseline (including baselines that predate the field), only an
// absolute rate beyond conflictAbsCeiling.
func conflictWarning(name string, old, cur float64) []string {
	if cur <= conflictNoiseFloor {
		return nil
	}
	if old <= conflictNoiseFloor {
		if cur <= conflictAbsCeiling {
			return nil
		}
		return []string{fmt.Sprintf(
			"benchmark %s walk_conflict_rate reached %.4f from a ~zero baseline; speculative repair is eating the walk's parallelism — investigate before merging",
			name, cur)}
	}
	if cur/old <= 1+conflictWarnFraction {
		return nil
	}
	return []string{fmt.Sprintf(
		"benchmark %s walk_conflict_rate grew %.0f%% (%.4f -> %.4f); speculative repair is eating the walk's parallelism — investigate before merging",
		name, (cur/old-1)*100, old, cur)}
}
