// Command popbench runs the reproduction experiment suite (E1–E17, A1–A8)
// and prints the regenerated tables — the rows recorded in EXPERIMENTS.md.
//
// Examples:
//
//	popbench -list
//	popbench -scale quick
//	popbench -scale full -run E1,E7,E12
//	popbench -scale full -markdown > results.md
//	popbench -scale quick -json -bench > results.json
//	popbench -diff BENCH_baseline.json results.json
//	popbench -refresh-baseline
//	popbench -bench -run E1 -cpuprofile cpu.out -memprofile mem.out
//
// The -json form emits one machine-readable document (schema below) so CI
// can track the verdict and per-experiment wall time across commits; with
// -bench it also times a fixed set of simulator throughput workloads
// (agentsteps/s and per-round allocations). The -diff form compares two
// such documents: it FAILS on any experiment verdict regression (reproduced
// in the old document, not in the new) and WARNS when a benchmark's
// agentsteps/s drops — or its per-round allocations rise — more than 20%,
// the CI regression gate (BENCH_baseline.json is the committed baseline).
// The -refresh-baseline form regenerates that committed baseline in one
// command after a PR intentionally changes verdict rows or throughput.
//
// The -cpuprofile and -memprofile flags write pprof profiles covering the
// whole run (experiments plus -bench workloads); see README for the
// profiling workflow.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"popstab"
)

// jsonReport is the machine-readable output of a -json run. Fields are
// stable: add, don't rename, so downstream perf tracking keeps parsing.
type jsonReport struct {
	SchemaVersion int              `json:"schema_version"`
	Scale         string           `json:"scale"`
	Seed          uint64           `json:"seed"`
	Workers       int              `json:"workers"`
	NumCPU        int              `json:"num_cpu"`
	GoVersion     string           `json:"go_version"`
	TotalMS       int64            `json:"total_ms"`
	Failures      int              `json:"failures"`
	Experiments   []jsonExperiment `json:"experiments"`
	// Benchmarks is present when the run was invoked with -bench.
	Benchmarks []jsonBenchmark `json:"benchmarks,omitempty"`
}

// jsonExperiment is one experiment's outcome and cost.
type jsonExperiment struct {
	ID         string                `json:"id"`
	Title      string                `json:"title"`
	Claim      string                `json:"claim"`
	Verdict    string                `json:"verdict"`
	Reproduced bool                  `json:"reproduced"`
	ElapsedMS  int64                 `json:"elapsed_ms"`
	Tables     []popstab.ResultTable `json:"tables,omitempty"`
	Notes      []string              `json:"notes,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("popbench", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "quick", "experiment scale: quick|full")
		runIDs    = fs.String("run", "", "comma-separated experiment IDs (empty = all)")
		seed      = fs.Uint64("seed", 7, "suite PRNG seed")
		workers   = fs.Int("workers", runtime.NumCPU(), "trial-level parallelism")
		list      = fs.Bool("list", false, "list experiments and exit")
		markdown  = fs.Bool("markdown", false, "emit results as markdown")
		asJSON    = fs.Bool("json", false, "emit one machine-readable JSON document")
		bench     = fs.Bool("bench", false, "also time the simulator throughput workloads (agentsteps/s)")
		diff      = fs.Bool("diff", false, "compare two -json documents: popbench -diff old.json new.json")
		refresh   = fs.Bool("refresh-baseline", false, "regenerate the committed CI baseline in one command (forces -scale quick -json -bench, writes to -baseline)")
		baseline  = fs.String("baseline", "BENCH_baseline.json", "output path for -refresh-baseline")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile taken at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Profiling brackets everything below — experiment suite and -bench
	// workloads alike — so a hot path can be attributed wherever it is
	// exercised. The heap profile is taken at exit, after a forced GC, so
	// it shows live steady-state memory rather than transient garbage.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "popbench: heap profile: %v\n", err)
			}
			f.Close()
		}()
	}

	// One-command baseline refresh: the exact invocation CI diffs against,
	// written where CI reads it. Use after a PR intentionally changes
	// verdict rows or throughput (see ROADMAP). The document is staged in
	// memory and renamed into place only after the whole suite succeeded,
	// so a mid-suite failure (or a deviating experiment) can never
	// truncate or corrupt the committed baseline.
	jsonOut := io.Writer(os.Stdout)
	var refreshBuf bytes.Buffer
	if *refresh {
		if *diff || *list {
			return fmt.Errorf("-refresh-baseline cannot combine with -diff or -list")
		}
		*scaleName = "quick"
		*asJSON = true
		*bench = true
		*markdown = false
		jsonOut = &refreshBuf
	}

	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff needs exactly two arguments: old.json new.json")
		}
		return runDiff(os.Stdout, fs.Arg(0), fs.Arg(1))
	}

	if *list {
		for _, id := range popstab.ExperimentIDs() {
			title, claim, err := popstab.ExperimentInfo(id)
			if err != nil {
				return err
			}
			fmt.Printf("%-4s %s\n     %s\n", id, title, claim)
		}
		return nil
	}

	var scale popstab.ExperimentConfig
	switch *scaleName {
	case "quick":
		scale = popstab.ExperimentConfig{Scale: popstab.ScaleQuick}
	case "full":
		scale = popstab.ExperimentConfig{Scale: popstab.ScaleFull}
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	scale.Seed = *seed
	scale.Workers = *workers

	ids := popstab.ExperimentIDs()
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
	}

	type summaryRow struct {
		id, title, status string
		elapsed           time.Duration
	}
	var summary []summaryRow
	report := jsonReport{
		SchemaVersion: 1,
		Scale:         *scaleName,
		Seed:          *seed,
		Workers:       *workers,
		NumCPU:        runtime.NumCPU(),
		GoVersion:     runtime.Version(),
	}
	suiteStart := time.Now()
	failures := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := popstab.RunExperiment(id, scale)
		if err != nil {
			return err
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		reproduced := strings.HasPrefix(res.Verdict, "REPRODUCED")
		switch {
		case *asJSON:
			report.Experiments = append(report.Experiments, jsonExperiment{
				ID:         res.ID,
				Title:      res.Title,
				Claim:      res.Claim,
				Verdict:    res.Verdict,
				Reproduced: reproduced,
				ElapsedMS:  elapsed.Milliseconds(),
				Tables:     res.Tables,
				Notes:      res.Notes,
			})
		case *markdown:
			printMarkdown(res, elapsed)
		default:
			fmt.Println(res.Render())
			fmt.Printf("(%s in %s at scale %s)\n\n", res.ID, elapsed, *scaleName)
		}
		status := "reproduced"
		if !reproduced {
			failures++
			status = "DEVIATION"
		}
		summary = append(summary, summaryRow{res.ID, res.Title, status, elapsed})
	}
	if *bench {
		// Inline bench lines are plain text: suppress them in the two
		// document modes (JSON carries them structurally; markdown would
		// be corrupted by them).
		report.Benchmarks = runThroughputBenchmarks(!*asJSON && !*markdown)
	}
	if *asJSON {
		report.TotalMS = time.Since(suiteStart).Milliseconds()
		report.Failures = failures
		enc := json.NewEncoder(jsonOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
		if failures > 0 {
			if *refresh {
				return fmt.Errorf("%d experiment(s) did not reproduce; baseline NOT written", failures)
			}
			return fmt.Errorf("%d experiment(s) did not reproduce", failures)
		}
		if *refresh {
			tmp := *baseline + ".tmp"
			if err := os.WriteFile(tmp, refreshBuf.Bytes(), 0o644); err != nil {
				return err
			}
			if err := os.Rename(tmp, *baseline); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "popbench: wrote %s\n", *baseline)
		}
		return nil
	}
	if len(summary) > 1 {
		if *markdown {
			fmt.Println("### Suite summary")
			fmt.Println()
			fmt.Println("| experiment | status | time |")
			fmt.Println("| --- | --- | --- |")
			for _, r := range summary {
				fmt.Printf("| %s — %s | %s | %s |\n", r.id, r.title, r.status, r.elapsed)
			}
			fmt.Println()
		} else {
			fmt.Println("=== suite summary ===")
			for _, r := range summary {
				fmt.Printf("%-4s %-10s %10s  %s\n", r.id, r.status, r.elapsed, r.title)
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) did not reproduce", failures)
	}
	return nil
}

// printMarkdown renders a result as a markdown section with pipe tables.
func printMarkdown(res *popstab.ExperimentResult, elapsed time.Duration) {
	fmt.Printf("### %s — %s\n\n", res.ID, res.Title)
	fmt.Printf("**Claim.** %s\n\n", res.Claim)
	fmt.Printf("**Verdict.** %s *(ran in %s)*\n\n", res.Verdict, elapsed)
	for _, t := range res.Tables {
		if t.Title != "" {
			fmt.Printf("*%s*\n\n", t.Title)
		}
		fmt.Printf("| %s |\n", strings.Join(t.Cols, " | "))
		seps := make([]string, len(t.Cols))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Printf("| %s |\n", strings.Join(seps, " | "))
		for _, row := range t.Rows {
			fmt.Printf("| %s |\n", strings.Join(row, " | "))
		}
		fmt.Println()
	}
	for _, n := range res.Notes {
		fmt.Printf("> %s\n\n", n)
	}
}
