package main

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"popstab"
	"popstab/internal/agent"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/pool"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/sim"
	"popstab/internal/wire"
)

// jsonBenchmark is one throughput workload's outcome in the -json document.
// Fields are stable: add, don't rename.
type jsonBenchmark struct {
	Name    string `json:"name"`
	N       int    `json:"n"`
	Workers int    `json:"workers"`
	// Rounds is the number of iterations (full rounds, or matching phases
	// for the match-only workloads) executed.
	Rounds    int   `json:"rounds"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// AgentStepsPerSec is the throughput metric the -diff perf gate
	// compares: processed agents (stepped, or matched-over for match-only
	// workloads) per wall-clock second.
	AgentStepsPerSec float64 `json:"agentsteps_per_s"`
	// BytesPerRound and AllocsPerRound are heap-allocation averages per
	// iteration (runtime.MemStats deltas over the timed loop, excluding
	// construction). The -diff gate warns when they regress: the steady
	// state is supposed to reuse buffers, so new per-round garbage is a
	// leak of the scratch-reuse discipline even when wall time looks fine.
	BytesPerRound  float64 `json:"bytes_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	// The per-phase breakdown of the spatial matching pipeline, averaged
	// over the timed iterations (omitted for workloads without a spatial
	// matcher). WalkConflictRate is the fraction of speculatively walked
	// visits that needed serial repair — the -diff gate warns when it
	// regresses, since a rising conflict rate erodes the speculative
	// walk's scaling long before wall time shows it on a small machine.
	BucketNSPerRound  float64 `json:"bucket_ns_per_round,omitempty"`
	ScatterNSPerRound float64 `json:"scatter_ns_per_round,omitempty"`
	CandNSPerRound    float64 `json:"cand_ns_per_round,omitempty"`
	WalkNSPerRound    float64 `json:"walk_ns_per_round,omitempty"`
	WalkConflictRate  float64 `json:"walk_conflict_rate,omitempty"`

	// engineStats carries the engine's cumulative round-phase counters for
	// the verbose console breakdown. Unexported on purpose: it stays out of
	// the JSON document, whose schema the perf-tracking gate parses.
	engineStats *popstab.RoundStats
}

// benchBudget is the minimum wall-clock spent per workload; every workload
// runs at least one iteration, then iterates until the budget is consumed
// so agentsteps/s is averaged over enough work to be stable.
const benchBudget = 1500 * time.Millisecond

// runThroughputBenchmarks times the fixed simulator workloads whose
// agentsteps/s the -diff perf gate tracks: well-mixed and torus full rounds
// at N = 2¹⁶ and 2²⁰, the sharded torus matching phase alone at N = 2²⁰
// (the parallel spatial pipeline), and an apply-heavy churn round where
// about half the population turns over every round (the sharded
// apply/compaction path). All workloads are seeded and deterministic in
// content; only wall time varies across machines, which is why -diff only
// warns (never fails) on throughput changes.
func runThroughputBenchmarks(verbose bool) []jsonBenchmark {
	var out []jsonBenchmark
	add := func(b jsonBenchmark, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: benchmark %s skipped: %v\n", b.Name, err)
			return
		}
		out = append(out, b)
		if verbose {
			fmt.Printf("bench %-24s n=%-8d workers=%-2d rounds=%-4d %8dms  %14.0f agentsteps/s  %10.0f B/round %8.1f allocs/round\n",
				b.Name, b.N, b.Workers, b.Rounds, b.ElapsedMS, b.AgentStepsPerSec,
				b.BytesPerRound, b.AllocsPerRound)
			if b.WalkNSPerRound > 0 {
				fmt.Printf("      %-24s phases/round: bucket %s scatter %s cand %s walk %s  conflict %.4f\n",
					"", fmtNS(b.BucketNSPerRound), fmtNS(b.ScatterNSPerRound),
					fmtNS(b.CandNSPerRound), fmtNS(b.WalkNSPerRound), b.WalkConflictRate)
			}
			if b.engineStats != nil {
				fmt.Printf("      %s\n", strings.ReplaceAll(b.engineStats.Breakdown(), "\n", "\n      "))
			}
		}
	}
	add(benchRounds("RoundN65536", 65536, popstab.Mixed))
	add(benchRounds("RoundN1048576", 1<<20, popstab.Mixed))
	add(benchRounds("TorusRoundN65536", 65536, popstab.Torus))
	add(benchRounds("TorusRoundN1048576", 1<<20, popstab.Torus))
	add(benchTorusMatch("TorusMatchN1048576", 1<<20))
	add(benchChurn("ChurnN1048576", 1<<20))
	return out
}

// measure drives iter — one iteration returning the number of agents it
// processed — until benchBudget is consumed, and fills b's timing and
// allocation fields. Two untimed warmup iterations run first so the
// initial growth of reusable buffers (double buffers, pairing scratch,
// spatial CSR arrays) lands outside the measured window: the gate tracks
// the steady state, and short workloads (a few iterations per budget)
// would otherwise flap on how much warmup they happened to absorb.
//
// phases, when non-nil, reads the spatial matcher's cumulative pipeline
// counters (ok = false when the workload has no spatial matcher); the
// delta over the timed window fills the per-phase breakdown fields.
func measure(b jsonBenchmark, iter func() int, phases func() (match.PipelineStats, bool)) jsonBenchmark {
	for i := 0; i < 2; i++ {
		iter()
	}
	var p0 match.PipelineStats
	if phases != nil {
		p0, _ = phases()
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	steps := 0
	start := time.Now()
	for rounds := 0; ; rounds++ {
		if elapsed := time.Since(start); rounds > 0 && elapsed >= benchBudget {
			runtime.ReadMemStats(&m1)
			b.Rounds = rounds
			b.ElapsedMS = elapsed.Milliseconds()
			b.AgentStepsPerSec = float64(steps) / elapsed.Seconds()
			b.BytesPerRound = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(rounds)
			b.AllocsPerRound = float64(m1.Mallocs-m0.Mallocs) / float64(rounds)
			if phases != nil {
				if p1, ok := phases(); ok {
					d := p1.Sub(p0)
					b.BucketNSPerRound = float64(d.BucketNS) / float64(rounds)
					b.ScatterNSPerRound = float64(d.ScatterNS) / float64(rounds)
					b.CandNSPerRound = float64(d.CandNS) / float64(rounds)
					b.WalkNSPerRound = float64(d.WalkNS) / float64(rounds)
					b.WalkConflictRate = d.ConflictRate()
				}
			}
			return b
		}
		steps += iter()
	}
}

// benchRounds times full engine rounds at the engine's default worker
// count.
func benchRounds(name string, n int, topo popstab.Topology) (jsonBenchmark, error) {
	b := jsonBenchmark{Name: name, N: n, Workers: runtime.NumCPU()}
	s, err := popstab.New(popstab.Config{N: n, Tinner: 2 * log2of(n), Seed: 1, Topology: topo})
	if err != nil {
		return b, err
	}
	defer s.Close()
	b = measure(b, func() int {
		s.RunRound()
		return s.Size()
	}, s.MatchStats)
	rs := s.RoundStats()
	b.engineStats = &rs
	return b, nil
}

// benchTorusMatch times the sharded spatial matching phase alone — the
// spatial hot path — over a static population of n uniformly placed
// agents, with a live worker pool exactly as the engine provides one.
func benchTorusMatch(name string, n int) (jsonBenchmark, error) {
	b := jsonBenchmark{Name: name, N: n, Workers: runtime.NumCPU()}
	tor, err := match.NewTorus(1 / math.Sqrt(float64(n)))
	if err != nil {
		return b, err
	}
	pop := population.New(n)
	tor.Bind(pop, prng.New(1))
	tor.SetWorkers(runtime.NumCPU())
	pl := pool.New(runtime.NumCPU())
	defer pl.Close()
	tor.SetPool(pl)
	src := prng.New(2)
	var p match.Pairing
	p.SetPool(pl)
	return measure(b, func() int {
		tor.SampleMatch(pop, src, &p)
		return n
	}, func() (match.PipelineStats, bool) { return tor.PipelineStats(), true }), nil
}

// churnStepper is a synthetic apply-heavy program: each agent dies with
// probability 1/4 and splits with probability 1/4 every round, so about
// half the population turns over per round — the worst case for the
// apply/compaction path the prefix-sum plan shards. Messages are ignored;
// the process is critical (E[offspring] = 1), so the size random-walks
// around its start without drifting over a benchmark's horizon.
type churnStepper struct{}

func (churnStepper) EpochLen() int              { return 1 }
func (churnStepper) Compose(*agent.State) uint8 { return 0 }
func (churnStepper) Decode(uint8) wire.Message  { return wire.Message{} }
func (churnStepper) Step(_ *agent.State, _ wire.Message, _ bool, src *prng.Source) population.Action {
	switch src.Uint64() % 4 {
	case 0:
		return population.ActDie
	case 1:
		return population.ActSplit
	default:
		return population.ActKeep
	}
}

// benchChurn times full rounds of the churn program — compose and matching
// are trivial, so the round is dominated by the sharded apply/compaction
// of ~n/2 deaths and ~n/2 births.
func benchChurn(name string, n int) (jsonBenchmark, error) {
	b := jsonBenchmark{Name: name, N: n, Workers: runtime.NumCPU()}
	p, err := params.Derive(n, params.WithTinner(2*log2of(n)))
	if err != nil {
		return b, err
	}
	eng, err := sim.New(sim.Config{Params: p, Protocol: churnStepper{}, Seed: 1})
	if err != nil {
		return b, err
	}
	defer eng.Close()
	return measure(b, func() int {
		eng.RunRound()
		return eng.Size()
	}, nil), nil
}

// fmtNS renders a per-round phase cost with a human unit (µs or ms).
func fmtNS(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	default:
		return fmt.Sprintf("%.0fµs", ns/1e3)
	}
}

// log2of is log₂ n for a power of two.
func log2of(n int) int {
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return lg
}
