package main

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"popstab"
	"popstab/internal/match"
	"popstab/internal/population"
	"popstab/internal/prng"
)

// jsonBenchmark is one throughput workload's outcome in the -json document.
// Fields are stable: add, don't rename.
type jsonBenchmark struct {
	Name    string `json:"name"`
	N       int    `json:"n"`
	Workers int    `json:"workers"`
	// Rounds is the number of iterations (full rounds, or matching phases
	// for the match-only workloads) executed.
	Rounds    int   `json:"rounds"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// AgentStepsPerSec is the throughput metric the -diff perf gate
	// compares: processed agents (stepped, or matched-over for match-only
	// workloads) per wall-clock second.
	AgentStepsPerSec float64 `json:"agentsteps_per_s"`
}

// benchBudget is the minimum wall-clock spent per workload; every workload
// runs at least one iteration, then iterates until the budget is consumed
// so agentsteps/s is averaged over enough work to be stable.
const benchBudget = 1500 * time.Millisecond

// runThroughputBenchmarks times the fixed simulator workloads whose
// agentsteps/s the -diff perf gate tracks: a well-mixed full round, a torus
// full round, and the sharded torus matching phase alone at N = 2²⁰ (the
// parallel spatial pipeline). All workloads are seeded and deterministic in
// content; only wall time varies across machines, which is why -diff only
// warns (never fails) on throughput changes.
func runThroughputBenchmarks(verbose bool) []jsonBenchmark {
	var out []jsonBenchmark
	add := func(b jsonBenchmark, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "popbench: benchmark %s skipped: %v\n", b.Name, err)
			return
		}
		out = append(out, b)
		if verbose {
			fmt.Printf("bench %-24s n=%-8d workers=%-2d rounds=%-4d %8dms  %14.0f agentsteps/s\n",
				b.Name, b.N, b.Workers, b.Rounds, b.ElapsedMS, b.AgentStepsPerSec)
		}
	}
	add(benchRounds("RoundN65536", 65536, popstab.Mixed))
	add(benchRounds("TorusRoundN65536", 65536, popstab.Torus))
	add(benchTorusMatch("TorusMatchN1048576", 1<<20))
	return out
}

// benchRounds times full engine rounds at the engine's default worker
// count.
func benchRounds(name string, n int, topo popstab.Topology) (jsonBenchmark, error) {
	b := jsonBenchmark{Name: name, N: n, Workers: runtime.NumCPU()}
	sim, err := popstab.New(popstab.Config{N: n, Tinner: 2 * log2of(n), Seed: 1, Topology: topo})
	if err != nil {
		return b, err
	}
	steps := 0
	start := time.Now()
	for rounds := 0; ; rounds++ {
		if elapsed := time.Since(start); rounds > 0 && elapsed >= benchBudget {
			b.Rounds = rounds
			b.ElapsedMS = elapsed.Milliseconds()
			b.AgentStepsPerSec = float64(steps) / elapsed.Seconds()
			return b, nil
		}
		sim.RunRound()
		steps += sim.Size()
	}
}

// benchTorusMatch times the sharded spatial matching phase alone — the
// tentpole hot path — over a static population of n uniformly placed
// agents.
func benchTorusMatch(name string, n int) (jsonBenchmark, error) {
	b := jsonBenchmark{Name: name, N: n, Workers: runtime.NumCPU()}
	tor, err := match.NewTorus(1 / math.Sqrt(float64(n)))
	if err != nil {
		return b, err
	}
	pop := population.New(n)
	tor.Bind(pop, prng.New(1))
	tor.SetWorkers(runtime.NumCPU())
	src := prng.New(2)
	var p match.Pairing
	start := time.Now()
	for rounds := 0; ; rounds++ {
		if elapsed := time.Since(start); rounds > 0 && elapsed >= benchBudget {
			b.Rounds = rounds
			b.ElapsedMS = elapsed.Milliseconds()
			b.AgentStepsPerSec = float64(rounds) * float64(n) / elapsed.Seconds()
			return b, nil
		}
		tor.SampleMatch(pop, src, &p)
	}
}

// log2of is log₂ n for a power of two.
func log2of(n int) int {
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return lg
}
