package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// E13 is the cheapest experiment in the suite.
	if err := run([]string{"-scale", "quick", "-run", "E13"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-scale", "quick", "-run", "E13", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Error("accepted unknown scale")
	}
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Error("accepted unknown experiment")
	}
}

func TestRefreshBaseline(t *testing.T) {
	path := t.TempDir() + "/baseline.json"
	// -run narrows the suite to keep the test fast; the default (full
	// suite) is what regenerates the committed baseline.
	if err := run([]string{"-refresh-baseline", "-baseline", path, "-run", "E13"}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if rep.Scale != "quick" || len(rep.Experiments) != 1 || len(rep.Benchmarks) == 0 {
		t.Fatalf("baseline document %+v lacks forced quick/json/bench shape", rep)
	}
	// The refreshed document must diff cleanly against itself.
	if err := run([]string{"-diff", path, path}); err != nil {
		t.Fatalf("fresh baseline does not pass its own gate: %v", err)
	}
}

func TestRefreshBaselineFlagConflicts(t *testing.T) {
	if err := run([]string{"-refresh-baseline", "-diff", "a", "b"}); err == nil {
		t.Error("accepted -refresh-baseline with -diff")
	}
	if err := run([]string{"-refresh-baseline", "-list"}); err == nil {
		t.Error("accepted -refresh-baseline with -list")
	}
}

func TestRunJSON(t *testing.T) {
	// Capture stdout and validate the machine-readable document parses and
	// carries the fields perf tracking depends on.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	// Drain concurrently: run() writes synchronously, so an undrained pipe
	// would deadlock once output exceeds the pipe buffer.
	outCh := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		outCh <- b
	}()
	runErr := run([]string{"-scale", "quick", "-run", "E13", "-json"})
	w.Close()
	os.Stdout = old
	out := <-outCh
	if runErr != nil {
		t.Fatalf("run: %v (output %q)", runErr, out)
	}
	var rep jsonReport
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if rep.SchemaVersion != 1 || rep.Scale != "quick" || rep.Failures != 0 {
		t.Errorf("unexpected report header: %+v", rep)
	}
	if len(rep.Experiments) != 1 {
		t.Fatalf("got %d experiments", len(rep.Experiments))
	}
	e := rep.Experiments[0]
	if e.ID != "E13" || !e.Reproduced || e.Verdict == "" || e.ElapsedMS < 0 {
		t.Errorf("unexpected experiment record: %+v", e)
	}
}

// writeReport marshals a jsonReport to a temp file for -diff tests.
func writeReport(t *testing.T, rep jsonReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	f := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(f, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

// baseReport builds a healthy two-experiment, one-benchmark document.
func baseReport() jsonReport {
	return jsonReport{
		SchemaVersion: 1,
		Scale:         "quick",
		Seed:          7,
		Experiments: []jsonExperiment{
			{ID: "E1", Title: "main theorem", Verdict: "REPRODUCED: ok", Reproduced: true},
			{ID: "A8", Title: "topology gallery", Verdict: "REPRODUCED: ok", Reproduced: true},
		},
		Benchmarks: []jsonBenchmark{
			{Name: "TorusMatchN1048576", N: 1 << 20, Rounds: 5, AgentStepsPerSec: 1e7},
		},
	}
}

// TestDiffNoRegression: identical documents pass.
func TestDiffNoRegression(t *testing.T) {
	old := writeReport(t, baseReport())
	neu := writeReport(t, baseReport())
	if err := run([]string{"-diff", old, neu}); err != nil {
		t.Fatalf("identical documents diffed dirty: %v", err)
	}
}

// TestDiffVerdictRegressionFails is the CI gate's core contract: an
// experiment that flips REPRODUCED -> DEVIATION fails the diff.
func TestDiffVerdictRegressionFails(t *testing.T) {
	old := writeReport(t, baseReport())
	bad := baseReport()
	bad.Experiments[1].Reproduced = false
	bad.Experiments[1].Verdict = "DEVIATION: containment thresholds shifted"
	bad.Failures = 1
	neu := writeReport(t, bad)
	err := run([]string{"-diff", old, neu})
	if err == nil {
		t.Fatal("verdict regression did not fail the diff")
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestDiffMissingExperimentFails: a previously reproduced experiment that
// vanishes from the new run is a regression, not a silent pass.
func TestDiffMissingExperimentFails(t *testing.T) {
	old := writeReport(t, baseReport())
	short := baseReport()
	short.Experiments = short.Experiments[:1]
	neu := writeReport(t, short)
	if err := run([]string{"-diff", old, neu}); err == nil {
		t.Fatal("missing experiment did not fail the diff")
	}
}

// TestDiffPerfDropWarnsOnly: a >20% agentsteps/s drop warns but does not
// fail (wall-clock is machine-dependent), and new experiments are
// reported, not failed.
func TestDiffPerfDropWarnsOnly(t *testing.T) {
	old := writeReport(t, baseReport())
	slow := baseReport()
	slow.Benchmarks[0].AgentStepsPerSec = 0.5e7 // -50%
	slow.Experiments = append(slow.Experiments,
		jsonExperiment{ID: "A9", Title: "future", Verdict: "REPRODUCED: ok", Reproduced: true})
	neu := writeReport(t, slow)
	if err := run([]string{"-diff", old, neu}); err != nil {
		t.Fatalf("perf drop must warn, not fail: %v", err)
	}
	// A small drop stays silent; exercised via diffBenchmarks directly.
	var sb strings.Builder
	warns := diffBenchmarks(&sb,
		[]jsonBenchmark{{Name: "x", AgentStepsPerSec: 100}},
		[]jsonBenchmark{{Name: "x", AgentStepsPerSec: 90}})
	if len(warns) != 0 {
		t.Errorf("10%% drop warned: %v", warns)
	}
	warns = diffBenchmarks(&sb,
		[]jsonBenchmark{{Name: "x", AgentStepsPerSec: 100}},
		[]jsonBenchmark{{Name: "x", AgentStepsPerSec: 79}})
	if len(warns) != 1 {
		t.Errorf("21%% drop produced %d warnings", len(warns))
	}
}

// TestDiffAllocRegressionWarnsOnly: per-round allocation growth beyond 20%
// warns (both allocs/round and bytes/round) but never fails the diff, and
// the gate stays silent for pre-metric baselines (old == 0), sub-noise
// absolute values, and growth inside the tolerance.
func TestDiffAllocRegressionWarnsOnly(t *testing.T) {
	var sb strings.Builder
	warns := diffBenchmarks(&sb,
		[]jsonBenchmark{{Name: "x", AgentStepsPerSec: 100, AllocsPerRound: 100, BytesPerRound: 1e6}},
		[]jsonBenchmark{{Name: "x", AgentStepsPerSec: 100, AllocsPerRound: 200, BytesPerRound: 3e6}})
	if len(warns) != 2 {
		t.Fatalf("alloc regression produced %d warnings, want 2: %v", len(warns), warns)
	}
	for _, w := range warns {
		if !strings.Contains(w, "grew") {
			t.Errorf("warning %q does not describe growth", w)
		}
	}

	// Warn-only: a whole-document diff with the same regression passes.
	oldRep := baseReport()
	oldRep.Benchmarks[0].AllocsPerRound = 100
	oldRep.Benchmarks[0].BytesPerRound = 1e6
	newRep := baseReport()
	newRep.Benchmarks[0].AllocsPerRound = 500
	newRep.Benchmarks[0].BytesPerRound = 5e6
	if err := run([]string{"-diff", writeReport(t, oldRep), writeReport(t, newRep)}); err != nil {
		t.Fatalf("alloc regression must warn, not fail: %v", err)
	}

	// Silent cases.
	for _, tc := range []struct {
		name     string
		old, cur jsonBenchmark
	}{
		{"pre-metric baseline", jsonBenchmark{Name: "x", AgentStepsPerSec: 1},
			jsonBenchmark{Name: "x", AgentStepsPerSec: 1, AllocsPerRound: 1000, BytesPerRound: 1e7}},
		{"below noise floor", jsonBenchmark{Name: "x", AgentStepsPerSec: 1, AllocsPerRound: 2, BytesPerRound: 100},
			jsonBenchmark{Name: "x", AgentStepsPerSec: 1, AllocsPerRound: 10, BytesPerRound: 1000}},
		{"growth inside tolerance", jsonBenchmark{Name: "x", AgentStepsPerSec: 1, AllocsPerRound: 100, BytesPerRound: 1e6},
			jsonBenchmark{Name: "x", AgentStepsPerSec: 1, AllocsPerRound: 110, BytesPerRound: 1.1e6}},
	} {
		if warns := diffBenchmarks(&sb, []jsonBenchmark{tc.old}, []jsonBenchmark{tc.cur}); len(warns) != 0 {
			t.Errorf("%s warned: %v", tc.name, warns)
		}
	}
}

// TestDiffConflictRateWarnsOnly: walk_conflict_rate growth warns (the
// speculative walk's repair cost is machine-independent) but never fails,
// and the gate stays silent for pre-metric baselines with a modest absolute
// rate, sub-noise rates, and growth inside the tolerance.
func TestDiffConflictRateWarnsOnly(t *testing.T) {
	var sb strings.Builder
	bench := func(rate float64) jsonBenchmark {
		return jsonBenchmark{Name: "x", AgentStepsPerSec: 100,
			WalkNSPerRound: 1e6, WalkConflictRate: rate}
	}
	warns := diffBenchmarks(&sb, []jsonBenchmark{bench(0.01)}, []jsonBenchmark{bench(0.02)})
	if len(warns) != 1 || !strings.Contains(warns[0], "walk_conflict_rate") {
		t.Fatalf("2x conflict growth produced %v, want one walk_conflict_rate warning", warns)
	}
	warns = diffBenchmarks(&sb, []jsonBenchmark{bench(0)}, []jsonBenchmark{bench(0.10)})
	if len(warns) != 1 {
		t.Fatalf("high absolute rate from zero baseline produced %v, want one warning", warns)
	}

	// Warn-only: a whole-document diff with the regression still passes.
	oldRep := baseReport()
	oldRep.Benchmarks[0].WalkNSPerRound = 1e6
	oldRep.Benchmarks[0].WalkConflictRate = 0.01
	newRep := baseReport()
	newRep.Benchmarks[0].WalkNSPerRound = 1e6
	newRep.Benchmarks[0].WalkConflictRate = 0.05
	if err := run([]string{"-diff", writeReport(t, oldRep), writeReport(t, newRep)}); err != nil {
		t.Fatalf("conflict-rate regression must warn, not fail: %v", err)
	}

	// Silent cases.
	for _, tc := range []struct {
		name     string
		old, cur jsonBenchmark
	}{
		{"pre-metric baseline, modest rate", bench(0), bench(0.02)},
		{"below noise floor", bench(0), bench(0.001)},
		{"growth inside tolerance", bench(0.02), bench(0.022)},
	} {
		if warns := diffBenchmarks(&sb, []jsonBenchmark{tc.old}, []jsonBenchmark{tc.cur}); len(warns) != 0 {
			t.Errorf("%s warned: %v", tc.name, warns)
		}
	}
}

// TestDiffRejectsBadInput covers argument and document validation.
func TestDiffRejectsBadInput(t *testing.T) {
	good := writeReport(t, baseReport())
	if err := run([]string{"-diff", good}); err == nil {
		t.Error("accepted one argument")
	}
	if err := run([]string{"-diff", good, filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("accepted missing file")
	}
	junk := filepath.Join(t.TempDir(), "junk.json")
	if err := os.WriteFile(junk, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-diff", good, junk}); err == nil {
		t.Error("accepted non-popbench document")
	}
}

// TestDiffWarnsWhenAllBenchmarksGone: dropping -bench from the new run
// must surface a warning, not silently retire the perf gate.
func TestDiffWarnsWhenAllBenchmarksGone(t *testing.T) {
	var sb strings.Builder
	warns := diffBenchmarks(&sb,
		[]jsonBenchmark{{Name: "x", AgentStepsPerSec: 100}}, nil)
	if len(warns) != 1 {
		t.Errorf("empty new benchmark set produced %d warnings, want 1", len(warns))
	}
	if warns := diffBenchmarks(&sb, nil, nil); len(warns) != 0 {
		t.Errorf("no-benchmarks-anywhere warned: %v", warns)
	}
}

// TestDiffAddedExperimentInformational: experiments present only in the new
// document are reported as added but never fail the diff — not even when
// the added experiment itself deviates (a new experiment's failure is its
// own, not a baseline regression).
func TestDiffAddedExperimentInformational(t *testing.T) {
	old := writeReport(t, baseReport())
	newRep := baseReport()
	newRep.Experiments = append(newRep.Experiments,
		jsonExperiment{ID: "A9", Title: "patch attacks", Verdict: "REPRODUCED: ok", Reproduced: true},
		jsonExperiment{ID: "A10", Title: "hypothetical", Verdict: "DEVIATION: bad", Reproduced: false})
	neu := writeReport(t, newRep)

	var sb strings.Builder
	if err := runDiff(&sb, old, neu); err != nil {
		t.Fatalf("added experiments failed the diff: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"2 added", "added: A9 (reproduced)", "added: A10 (DEVIATION)"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}
