package main

import (
	"encoding/json"
	"io"
	"os"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// E13 is the cheapest experiment in the suite.
	if err := run([]string{"-scale", "quick", "-run", "E13"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-scale", "quick", "-run", "E13", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Error("accepted unknown scale")
	}
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Error("accepted unknown experiment")
	}
}

func TestRunJSON(t *testing.T) {
	// Capture stdout and validate the machine-readable document parses and
	// carries the fields perf tracking depends on.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	// Drain concurrently: run() writes synchronously, so an undrained pipe
	// would deadlock once output exceeds the pipe buffer.
	outCh := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		outCh <- b
	}()
	runErr := run([]string{"-scale", "quick", "-run", "E13", "-json"})
	w.Close()
	os.Stdout = old
	out := <-outCh
	if runErr != nil {
		t.Fatalf("run: %v (output %q)", runErr, out)
	}
	var rep jsonReport
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if rep.SchemaVersion != 1 || rep.Scale != "quick" || rep.Failures != 0 {
		t.Errorf("unexpected report header: %+v", rep)
	}
	if len(rep.Experiments) != 1 {
		t.Fatalf("got %d experiments", len(rep.Experiments))
	}
	e := rep.Experiments[0]
	if e.ID != "E13" || !e.Reproduced || e.Verdict == "" || e.ElapsedMS < 0 {
		t.Errorf("unexpected experiment record: %+v", e)
	}
}
