package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// E13 is the cheapest experiment in the suite.
	if err := run([]string{"-scale", "quick", "-run", "E13"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-scale", "quick", "-run", "E13", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Error("accepted unknown scale")
	}
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Error("accepted unknown experiment")
	}
}
