package main

import (
	"testing"

	"popstab"
)

// testSpec is the patch ball used by the spatial cells.
func testSpec() popstab.PatchSpec {
	return popstab.PatchSpec{Center: popstab.Point{X: 0.5, Y: 0.5}, Radius: 0.05}
}

func TestRunCell(t *testing.T) {
	dev, violated, stats, err := runCell(4096, 24, 1, 2, "delete-random", 8, popstab.Mixed, popstab.PatchSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if dev < 0 || dev > 1 {
		t.Errorf("deviation %v out of range", dev)
	}
	if violated {
		t.Error("tiny budget violated the interval")
	}
	if stats.Rounds == 0 || stats.StepNS == 0 {
		t.Errorf("cell round stats empty: %+v", stats)
	}
}

func TestRunCellZeroBudget(t *testing.T) {
	if _, _, _, err := runCell(4096, 24, 1, 1, "greedy", 0, popstab.Mixed, popstab.PatchSpec{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCellTorus(t *testing.T) {
	if _, _, _, err := runCell(4096, 24, 1, 1, "greedy", 8, popstab.Torus, testSpec()); err != nil {
		t.Fatal(err)
	}
}

func TestRunCellBadStrategy(t *testing.T) {
	if _, _, _, err := runCell(4096, 24, 1, 1, "bogus", 8, popstab.Mixed, popstab.PatchSpec{}); err == nil {
		t.Error("accepted unknown strategy")
	}
}

func TestRunSmallGrid(t *testing.T) {
	if err := run([]string{"-n", "4096", "-tinner", "24", "-epochs", "1", "-budgets", "0,4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadBudgets(t *testing.T) {
	if err := run([]string{"-budgets", "x"}); err == nil {
		t.Error("accepted non-numeric budget")
	}
	if err := run([]string{"-topology", "moebius"}); err == nil {
		t.Error("accepted unknown topology")
	}
}

// TestRunCellGallery smoke-tests one adversarial cell on each of the new
// gallery topologies.
func TestRunCellGallery(t *testing.T) {
	for _, topo := range []popstab.Topology{popstab.Grid, popstab.Ring, popstab.SmallWorld} {
		if _, _, _, err := runCell(4096, 24, 1, 1, "greedy", 8, topo, testSpec()); err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
	}
}

// TestRunCellPatchFamily smoke-tests each patch strategy on a spatial
// topology (rewire strategies on SmallWorld, where they bind).
func TestRunCellPatchFamily(t *testing.T) {
	for _, name := range popstab.SpatialAdversaryNames() {
		topo := popstab.Ring
		if name == "rewire-deny" || name == "rewire-deny-all" {
			topo = popstab.SmallWorld
		}
		if _, _, _, err := runCell(4096, 24, 1, 1, name, 8, topo, testSpec()); err != nil {
			t.Fatalf("%s on %v: %v", name, topo, err)
		}
	}
}
