package main

import (
	"testing"

	"popstab"
)

func TestRunCell(t *testing.T) {
	dev, violated, err := runCell(4096, 24, 1, 2, "delete-random", 8, popstab.Mixed)
	if err != nil {
		t.Fatal(err)
	}
	if dev < 0 || dev > 1 {
		t.Errorf("deviation %v out of range", dev)
	}
	if violated {
		t.Error("tiny budget violated the interval")
	}
}

func TestRunCellZeroBudget(t *testing.T) {
	if _, _, err := runCell(4096, 24, 1, 1, "greedy", 0, popstab.Mixed); err != nil {
		t.Fatal(err)
	}
}

func TestRunCellTorus(t *testing.T) {
	if _, _, err := runCell(4096, 24, 1, 1, "greedy", 8, popstab.Torus); err != nil {
		t.Fatal(err)
	}
}

func TestRunCellBadStrategy(t *testing.T) {
	if _, _, err := runCell(4096, 24, 1, 1, "bogus", 8, popstab.Mixed); err == nil {
		t.Error("accepted unknown strategy")
	}
}

func TestRunSmallGrid(t *testing.T) {
	if err := run([]string{"-n", "4096", "-tinner", "24", "-epochs", "1", "-budgets", "0,4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadBudgets(t *testing.T) {
	if err := run([]string{"-budgets", "x"}); err == nil {
		t.Error("accepted non-numeric budget")
	}
	if err := run([]string{"-topology", "moebius"}); err == nil {
		t.Error("accepted unknown topology")
	}
}

// TestRunCellGallery smoke-tests one adversarial cell on each of the new
// gallery topologies.
func TestRunCellGallery(t *testing.T) {
	for _, topo := range []popstab.Topology{popstab.Grid, popstab.Ring, popstab.SmallWorld} {
		if _, _, err := runCell(4096, 24, 1, 1, "greedy", 8, topo); err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
	}
}
