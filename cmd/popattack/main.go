// Command popattack explores the adversary strategy space: it runs every
// strategy across a grid of per-epoch budgets and prints the worst
// population displacement each achieves — a quick map of where the
// protocol's tolerance ends. With a spatial -topology (torus, grid, ring,
// smallworld) the same grid runs under geometric (nearest-available)
// communication — the A7/A8 scenarios — and the grid additionally includes
// the position-aware patch strategy family (delete-patch, cluster-leader*,
// rewire-deny*, patch-combo), parameterized by the -patch-* ball.
//
// Examples:
//
//	popattack -n 4096 -epochs 20 -budgets 0,8,32,128,512
//	popattack -n 4096 -topology torus -epochs 10
//	popattack -n 4096 -topology ring -patch-r 0.1 -epochs 10
//	popattack -n 4096 -topology smallworld -epochs 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"popstab"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popattack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("popattack", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 4096, "population target N")
		tinner     = fs.Int("tinner", 24, "recruitment subphase length (0 = paper default)")
		epochs     = fs.Int("epochs", 20, "epochs per cell")
		seed       = fs.Uint64("seed", 1, "PRNG seed")
		topo       = fs.String("topology", "mixed", "communication topology: mixed|torus|grid|ring|smallworld")
		budgetList = fs.String("budgets", "", "comma-separated per-epoch budgets (empty = 0,1x,4x,16x of N^(1/4))")
		patchX     = fs.Float64("patch-x", 0.5, "patch ball center X (spatial strategies)")
		patchY     = fs.Float64("patch-y", 0.5, "patch ball center Y (2-D topologies)")
		patchR     = fs.Float64("patch-r", 0.05, "patch ball radius (arc half-length on 1-D topologies)")
		stats      = fs.Bool("stats", false, "print the per-phase round cost breakdown summed over the whole grid")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	topology, err := popstab.TopologyFromString(*topo)
	if err != nil {
		return err
	}
	spec := popstab.PatchSpec{Center: popstab.Point{X: *patchX, Y: *patchY}, Radius: *patchR}

	probe, err := popstab.New(popstab.Config{N: *n, Tinner: *tinner, Seed: *seed})
	if err != nil {
		return err
	}
	params := probe.Params()
	base := params.MaxTolerableK()

	var budgets []int
	if *budgetList == "" {
		budgets = []int{0, base, 4 * base, 16 * base}
	} else {
		for _, tok := range strings.Split(*budgetList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return fmt.Errorf("bad budget %q: %w", tok, err)
			}
			budgets = append(budgets, v)
		}
	}

	fmt.Printf("# %s  topology=%s  (N^(1/4) = %d)\n", params, topology, base)
	fmt.Printf("# cells: worst |m−N|/N over %d epochs; '!' marks an interval violation\n\n", *epochs)
	fmt.Printf("%-18s", "strategy\\budget")
	for _, b := range budgets {
		fmt.Printf("  %10d", b)
	}
	fmt.Println()

	names := popstab.AdversaryNames()
	// The patch family needs positions to act as designed, so it joins the
	// grid only on spatial topologies.
	if topology != popstab.Mixed {
		names = append(names, popstab.SpatialAdversaryNames()...)
	}
	var grid popstab.RoundStats
	for _, name := range names {
		if name == "none" {
			continue
		}
		fmt.Printf("%-18s", name)
		for _, b := range budgets {
			dev, violated, cellStats, err := runCell(*n, *tinner, *seed, *epochs, name, b, topology, spec)
			if err != nil {
				return err
			}
			grid = grid.Add(cellStats)
			mark := " "
			if violated {
				mark = "!"
			}
			fmt.Printf("  %9.4f%s", dev, mark)
		}
		fmt.Println()
	}
	if *stats {
		fmt.Println("\n# " + strings.ReplaceAll(grid.Breakdown(), "\n", "\n# "))
	}
	return nil
}

// newAdversary resolves a strategy name against the position-blind registry
// first, then the patch family; an unknown name lists BOTH registries (a
// typo of a main strategy must not be answered with only the spatial names).
func newAdversary(name string, p popstab.Params, spec popstab.PatchSpec) (popstab.Adversary, error) {
	if adv, err := popstab.NewAdversaryByName(name, p); err == nil {
		return adv, nil
	}
	if adv, err := popstab.NewSpatialAdversaryByName(name, p, spec); err == nil {
		return adv, nil
	}
	all := append(popstab.AdversaryNames(), popstab.SpatialAdversaryNames()...)
	return nil, fmt.Errorf("unknown adversary %q (available: %s)", name, strings.Join(all, ", "))
}

// runCell measures the worst relative displacement for one strategy/budget,
// returning the cell's engine phase counters for the grid-wide -stats sum.
func runCell(n, tinner int, seed uint64, epochs int, name string, budget int, topology popstab.Topology, spec popstab.PatchSpec) (float64, bool, popstab.RoundStats, error) {
	cfg := popstab.Config{N: n, Tinner: tinner, Seed: seed, Topology: topology}
	probe, err := popstab.New(cfg)
	if err != nil {
		return 0, false, popstab.RoundStats{}, err
	}
	params := probe.Params()
	if budget > 0 {
		adv, err := newAdversary(name, params, spec)
		if err != nil {
			return 0, false, popstab.RoundStats{}, err
		}
		cfg.Adversary = adv
		cfg.K = 1
		cfg.PerEpochBudget = budget
	}
	s, err := popstab.New(cfg)
	if err != nil {
		return 0, false, popstab.RoundStats{}, err
	}
	lo := int(float64(params.N) * (1 - params.Alpha))
	hi := int(float64(params.N) * (1 + params.Alpha))
	worst := 0.0
	violated := false
	for i := 0; i < epochs; i++ {
		rep := s.RunEpoch()
		for _, v := range []int{rep.MinSize, rep.MaxSize} {
			d := float64(v-params.N) / float64(params.N)
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		if rep.MinSize < lo || rep.MaxSize > hi {
			violated = true
		}
	}
	return worst, violated, s.RoundStats(), nil
}
