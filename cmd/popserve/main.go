// Command popserve runs the simulation-as-a-service server: submit
// popstab.Spec configurations over HTTP, step/pause/resume the resulting
// sessions, fetch deterministic snapshots, resume them (here or on another
// popserve), and stream per-step stats over SSE. Identical submissions
// dedupe to one underlying run (the canonical-config-hash cache; Workers is
// excluded from the identity because simulation output is bit-identical
// across worker counts).
//
// With -checkpoint-dir the server is crash-safe: sessions checkpoint to
// disk on a round cadence and on graceful shutdown, and a restarted server
// rehydrates them and continues bit-identically — a SIGKILL loses at most
// the rounds since the last cadence checkpoint, never a session. SIGTERM
// drains cleanly: admissions stop (readyz flips to 503), in-flight quanta
// park, live sessions checkpoint, then the HTTP listener closes.
//
// Examples:
//
//	popserve -addr :8080 -checkpoint-dir /var/lib/popserve
//	curl -s localhost:8080/v1/sessions -d '{"spec":{"n":4096,"tinner":24,"seed":1},"rounds":288}'
//	curl -s localhost:8080/v1/sessions/s-000001
//	curl -s localhost:8080/v1/sessions/s-000001/snapshot > snap.json
//	curl -s localhost:8080/v1/sessions -d "$(jq '{spec,snapshot,rounds:144}' snap.json)"
//	curl -N localhost:8080/v1/sessions/s-000001/stream
//	curl -s localhost:8080/v1/readyz
//	curl -s localhost:8080/v1/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"popstab/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("popserve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		maxConcurrent = fs.Int("max-concurrent", runtime.NumCPU(), "sessions stepping simultaneously")
		maxSessions   = fs.Int("max-sessions", 4096, "session registry bound (completed sessions included)")
		quantum       = fs.Int("quantum", 64, "rounds per scheduling slice (pause/snapshot latency bound)")
		workers       = fs.Int("session-workers", 1, "engine worker count per session")
		ckptDir       = fs.String("checkpoint-dir", "", "durable checkpoint directory (empty: in-memory only, no crash recovery)")
		ckptEvery     = fs.Int("checkpoint-every", 256, "rounds between durable checkpoints per session")
		sessionTTL    = fs.Duration("session-ttl", 0, "reap terminal sessions idle this long (0: keep forever)")
		gcInterval    = fs.Duration("gc-interval", 30*time.Second, "janitor cadence for TTL reaping and eviction")
		maxResident   = fs.Int("max-resident", 0, "sessions kept in memory before LRU hibernation to the checkpoint dir (0: max-sessions)")
		submitRate    = fs.Float64("submit-rate", 0, "admission gate: sustained submissions/sec (0: unlimited)")
		submitBurst   = fs.Int("submit-burst", 0, "admission gate: burst allowance (0: rate rounded up)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget (drain + final checkpoints)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := serve.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxSessions:     *maxSessions,
		StepQuantum:     *quantum,
		SessionWorkers:  *workers,
		CheckpointEvery: *ckptEvery,
		SessionTTL:      *sessionTTL,
		GCInterval:      *gcInterval,
		MaxResident:     *maxResident,
		SubmitRate:      *submitRate,
		SubmitBurst:     *submitBurst,
	}
	if *ckptDir != "" {
		store, err := serve.NewFSStore(*ckptDir)
		if err != nil {
			return fmt.Errorf("checkpoint store: %w", err)
		}
		cfg.Store = store
	}

	m := serve.NewManager(cfg)
	if cfg.Store != nil {
		n, err := m.Recover()
		if err != nil {
			return fmt.Errorf("recover from %s: %w", *ckptDir, err)
		}
		if n > 0 {
			log.Printf("popserve recovered %d session(s) from %s", n, *ckptDir)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandler(m),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("popserve listening on %s (pool %d, quantum %d rounds, checkpoints %s)",
		*addr, *maxConcurrent, *quantum, describeStore(*ckptDir))

	select {
	case err := <-errCh:
		m.Close()
		return err
	case <-ctx.Done():
	}

	// Ordered drain: stop admissions and park runners first (readyz flips
	// to 503 and open SSE streams end immediately), checkpoint every live
	// session, then close the listener — which can now finish because no
	// handler is stuck behind a stepping quantum.
	log.Printf("popserve draining (budget %s)", *drainTimeout)
	shctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := m.Shutdown(shctx); err != nil {
		log.Printf("popserve drain incomplete: %v", err)
	}
	if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// describeStore renders the checkpoint configuration for the boot log line.
func describeStore(dir string) string {
	if dir == "" {
		return "off"
	}
	return "in " + dir
}
