// Command popserve runs the simulation-as-a-service server: submit
// popstab.Spec configurations over HTTP, step/pause/resume the resulting
// sessions, fetch deterministic snapshots, resume them (here or on another
// popserve), and stream per-step stats over SSE. Identical submissions
// dedupe to one underlying run (the canonical-config-hash cache; Workers is
// excluded from the identity because simulation output is bit-identical
// across worker counts).
//
// Examples:
//
//	popserve -addr :8080
//	curl -s localhost:8080/v1/sessions -d '{"spec":{"n":4096,"tinner":24,"seed":1},"rounds":288}'
//	curl -s localhost:8080/v1/sessions/s-000001
//	curl -s localhost:8080/v1/sessions/s-000001/snapshot > snap.json
//	curl -s localhost:8080/v1/sessions -d "$(jq '{spec,snapshot,rounds:144}' snap.json)"
//	curl -N localhost:8080/v1/sessions/s-000001/stream
//	curl -s localhost:8080/v1/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"popstab/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("popserve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		maxConcurrent = fs.Int("max-concurrent", runtime.NumCPU(), "sessions stepping simultaneously")
		maxSessions   = fs.Int("max-sessions", 4096, "session registry bound (completed sessions included)")
		quantum       = fs.Int("quantum", 64, "rounds per scheduling slice (pause/snapshot latency bound)")
		workers       = fs.Int("session-workers", 1, "engine worker count per session")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := serve.NewManager(serve.Config{
		MaxConcurrent:  *maxConcurrent,
		MaxSessions:    *maxSessions,
		StepQuantum:    *quantum,
		SessionWorkers: *workers,
	})
	defer m.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandler(m),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("popserve listening on %s (pool %d, quantum %d rounds)", *addr, *maxConcurrent, *quantum)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("popserve shutting down")
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
