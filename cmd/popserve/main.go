// Command popserve runs the simulation-as-a-service server: submit
// popstab.Spec configurations over HTTP, step/pause/resume the resulting
// sessions, fetch deterministic snapshots, resume them (here or on another
// popserve), long-poll or stream per-step stats, and fetch completed runs
// from the content-addressed result store. Identical submissions dedupe to
// one underlying run (the canonical-config-hash cache; Workers is excluded
// from the identity because simulation output is bit-identical across
// worker counts).
//
// With -checkpoint-dir the server is crash-safe: sessions checkpoint to
// disk on a round cadence and on graceful shutdown, and a restarted server
// rehydrates them and continues bit-identically — a SIGKILL loses at most
// the rounds since the last cadence checkpoint, never a session. SIGTERM
// drains cleanly: admissions stop (readyz flips to 503), in-flight quanta
// park, live sessions checkpoint, then the HTTP listener closes.
//
// popserve federates. One instance started with -coordinator routes
// submissions across workers that started with -join; the coordinator
// speaks the same /v1 API, so clients need not know they are talking to a
// fleet. Sessions migrate between workers over the snapshot wire codec
// (drain a worker via POST /v1/workers/{id}/drain), dead workers' sessions
// are replayed onto survivors, and the dedupe cache becomes a fleet-wide
// content-addressed result store.
//
// Examples:
//
//	popserve -addr :8080 -checkpoint-dir /var/lib/popserve
//	curl -s localhost:8080/v1/sessions -d '{"spec":{"n":4096,"tinner":24,"seed":1},"rounds":288}'
//	curl -s localhost:8080/v1/sessions/s-000001
//	curl -s localhost:8080/v1/sessions/s-000001/wait?status=done\&timeout=30s
//	curl -s localhost:8080/v1/sessions/s-000001/snapshot > snap.json
//	curl -s localhost:8080/v1/sessions -d "$(jq '{spec,snapshot,rounds:144}' snap.json)"
//	curl -N localhost:8080/v1/sessions/s-000001/stream
//	curl -s localhost:8080/v1/readyz
//	curl -s localhost:8080/v1/metrics
//	curl -s localhost:8080/v1/metrics?format=prometheus
//	curl -s -H 'X-Popstab-Trace: 0011223344556677' localhost:8080/v1/sessions -d '...'
//	curl -s localhost:8080/v1/trace/0011223344556677
//
// Fleet:
//
//	popserve -coordinator -addr :8090
//	popserve -addr :8091 -join http://localhost:8090
//	popserve -addr :8092 -join http://localhost:8090
//	curl -s localhost:8090/v1/sessions -d '{"spec":{"n":4096,"tinner":24,"seed":1},"rounds":288}'
//	curl -s localhost:8090/v1/workers
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers registered on DefaultServeMux, exposed only behind -pprof
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync"
	"syscall"
	"time"

	"popstab/internal/cluster"
	"popstab/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "popserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("popserve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		maxConcurrent = fs.Int("max-concurrent", runtime.NumCPU(), "sessions stepping simultaneously")
		maxSessions   = fs.Int("max-sessions", 4096, "session registry bound (completed sessions included)")
		quantum       = fs.Int("quantum", 64, "rounds per scheduling slice (pause/snapshot latency bound)")
		workers       = fs.Int("session-workers", 1, "engine worker count per session")
		ckptDir       = fs.String("checkpoint-dir", "", "durable checkpoint directory (empty: in-memory only, no crash recovery)")
		ckptEvery     = fs.Int("checkpoint-every", 256, "rounds between durable checkpoints per session")
		sessionTTL    = fs.Duration("session-ttl", 0, "reap terminal sessions idle this long (0: keep forever)")
		gcInterval    = fs.Duration("gc-interval", 30*time.Second, "janitor cadence for TTL reaping and eviction")
		maxResident   = fs.Int("max-resident", 0, "sessions kept in memory before LRU hibernation to the checkpoint dir (0: max-sessions)")
		submitRate    = fs.Float64("submit-rate", 0, "admission gate: sustained submissions/sec (0: unlimited)")
		submitBurst   = fs.Int("submit-burst", 0, "admission gate: burst allowance (0: rate rounded up)")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget (drain + final checkpoints)")
		pprofOn       = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the listen address")

		coordinator   = fs.Bool("coordinator", false, "run as a fleet coordinator instead of a worker (routes to -join'ed popserves)")
		routerName    = fs.String("router", "affinity", "coordinator routing policy: affinity, round-robin, or least-loaded")
		workerTTL     = fs.Duration("worker-ttl", 10*time.Second, "coordinator: expire workers whose heartbeat is older than this (sessions fail over)")
		sweepInterval = fs.Duration("sweep-interval", 2*time.Second, "coordinator: expiry/failover pass cadence")
		join          = fs.String("join", "", "worker: coordinator base URL to register with (http://host:port)")
		advertise     = fs.String("advertise", "", "worker: base URL the coordinator should dial back (default: derived from -addr)")
		heartbeat     = fs.Duration("heartbeat", 2*time.Second, "worker: re-registration cadence (keep well under the coordinator's -worker-ttl)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Structured logs on stderr: the trace middleware's access lines carry
	// trace=<id>, which is what log-based correlation (and the federation
	// smoke test) greps for.
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *coordinator {
		router, err := cluster.NewRouter(*routerName)
		if err != nil {
			ln.Close()
			return err
		}
		co := cluster.NewCoordinator(cluster.Config{
			Router:        router,
			WorkerTTL:     *workerTTL,
			SweepInterval: *sweepInterval,
			SubmitRate:    *submitRate,
			SubmitBurst:   *submitBurst,
		})
		srv := &http.Server{Handler: withPprof(cluster.NewHandler(co), *pprofOn), ReadHeaderTimeout: 10 * time.Second}
		errCh := make(chan error, 1)
		go func() { errCh <- srv.Serve(ln) }()
		log.Printf("popserve coordinating on %s (router %s, worker TTL %s, pprof %v)", ln.Addr(), router.Name(), *workerTTL, *pprofOn)
		select {
		case err := <-errCh:
			co.Close()
			return err
		case <-ctx.Done():
		}
		log.Printf("popserve coordinator draining (budget %s)", *drainTimeout)
		co.Close()
		shctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return nil
	}

	cfg := serve.Config{
		MaxConcurrent:   *maxConcurrent,
		MaxSessions:     *maxSessions,
		StepQuantum:     *quantum,
		SessionWorkers:  *workers,
		CheckpointEvery: *ckptEvery,
		SessionTTL:      *sessionTTL,
		GCInterval:      *gcInterval,
		MaxResident:     *maxResident,
		SubmitRate:      *submitRate,
		SubmitBurst:     *submitBurst,
	}
	if *ckptDir != "" {
		store, err := serve.NewFSStore(*ckptDir)
		if err != nil {
			ln.Close()
			return fmt.Errorf("checkpoint store: %w", err)
		}
		cfg.Store = store
	}

	m := serve.NewManager(cfg)
	if cfg.Store != nil {
		n, err := m.Recover()
		if err != nil {
			ln.Close()
			return fmt.Errorf("recover from %s: %w", *ckptDir, err)
		}
		if n > 0 {
			log.Printf("popserve recovered %d session(s) from %s", n, *ckptDir)
		}
	}

	srv := &http.Server{Handler: withPprof(serve.NewHandler(m), *pprofOn), ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	log.Printf("popserve listening on %s (pool %d, quantum %d rounds, checkpoints %s, pprof %v)",
		ln.Addr(), *maxConcurrent, *quantum, describeStore(*ckptDir), *pprofOn)

	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = deriveAdvertise(ln.Addr())
		}
		var once sync.Once
		err := cluster.Join(ctx, cluster.JoinConfig{
			Coordinator: *join,
			Advertise:   adv,
			Readiness:   m.Readiness,
			Interval:    *heartbeat,
			OnRegister: func(reg cluster.RegisterResponse) {
				once.Do(func() { log.Printf("popserve joined %s as %s (advertising %s)", *join, reg.ID, adv) })
			},
		})
		if err != nil {
			m.Close()
			ln.Close()
			return err
		}
	}

	select {
	case err := <-errCh:
		m.Close()
		return err
	case <-ctx.Done():
	}

	// Ordered drain: stop admissions and park runners first (readyz flips
	// to 503 and open SSE streams end immediately), checkpoint every live
	// session, then close the listener — which can now finish because no
	// handler is stuck behind a stepping quantum. Heartbeats stopped with
	// ctx, so a coordinator fails our sessions over after its worker TTL.
	log.Printf("popserve draining (budget %s)", *drainTimeout)
	shctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := m.Shutdown(shctx); err != nil {
		log.Printf("popserve drain incomplete: %v", err)
	}
	if err := srv.Shutdown(shctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// withPprof exposes net/http/pprof's DefaultServeMux handlers under
// /debug/pprof/ when enabled; the v1 API is untouched either way.
func withPprof(h http.Handler, enabled bool) http.Handler {
	if !enabled {
		return h
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	mux.Handle("/", h)
	return mux
}

// deriveAdvertise turns the bound listener address into a dialable base
// URL: an unspecified host (":8080") advertises loopback.
func deriveAdvertise(a net.Addr) string {
	tcp, ok := a.(*net.TCPAddr)
	if !ok {
		return "http://" + a.String()
	}
	host := "127.0.0.1"
	if tcp.IP != nil && !tcp.IP.IsUnspecified() {
		host = tcp.IP.String()
	}
	return "http://" + net.JoinHostPort(host, strconv.Itoa(tcp.Port))
}

// describeStore renders the checkpoint configuration for the boot log line.
func describeStore(dir string) string {
	if dir == "" {
		return "off"
	}
	return "in " + dir
}
