package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"popstab"
	"popstab/internal/serve"
)

func TestRunFlagError(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunListenError(t *testing.T) {
	err := run([]string{"-addr", "256.256.256.256:0"})
	if err == nil || !strings.Contains(err.Error(), "listen") {
		t.Fatalf("bad address: err = %v", err)
	}
}

func TestRunBadCheckpointDir(t *testing.T) {
	// A file where the directory should be: the store must refuse to boot.
	path := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-addr", "127.0.0.1:0", "-checkpoint-dir", path})
	if err == nil || !strings.Contains(err.Error(), "checkpoint store") {
		t.Fatalf("file as checkpoint dir: err = %v", err)
	}
}

// freeAddr reserves a loopback port and releases it for run() to claim.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestRunRecoverAndDrain is the process-level crash-safety round trip: a
// prior process leaves a checkpoint behind, a fresh popserve boots against
// the same directory, serves the recovered session over HTTP, and drains
// cleanly on SIGTERM.
func TestRunRecoverAndDrain(t *testing.T) {
	dir := t.TempDir()
	store, err := serve.NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The "prior process": run a session to completion and shut down
	// gracefully so its checkpoint (state + dedupe identity) is durable.
	prev := serve.NewManager(serve.Config{MaxConcurrent: 2, StepQuantum: 16, Store: store})
	spec := popstab.Spec{N: 4096, Tinner: 24, Seed: 5}
	j, _, err := prev.Submit(context.Background(), spec, 64)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("seed job did not complete")
	}
	id := j.ID()
	prev.Close()

	addr := freeAddr(t)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", addr, "-checkpoint-dir", dir, "-drain-timeout", "30s"})
	}()

	// The recovered session must be resolvable over HTTP with its state.
	var info serve.JobInfo
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/v1/sessions/%s", addr, id))
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&info)
			resp.Body.Close()
			if err == nil && resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered session %s never served: %v", id, err)
		}
		select {
		case runErr := <-errCh:
			t.Fatalf("server exited during recovery probe: %v", runErr)
		case <-time.After(20 * time.Millisecond):
		}
	}
	if info.Status != serve.StatusDone || info.Stats.Round != 64 {
		t.Fatalf("recovered session state: %+v", info)
	}

	// SIGTERM: ordered drain, clean exit.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain on SIGTERM")
	}
	// The drained server re-checkpointed the session for the next boot.
	if _, ok, err := store.Get(id); !ok || err != nil {
		t.Fatalf("checkpoint missing after drain: ok=%v err=%v", ok, err)
	}
}
