package main

import (
	"strings"
	"testing"
)

func TestRunFlagError(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunListenError(t *testing.T) {
	err := run([]string{"-addr", "256.256.256.256:0"})
	if err == nil || !strings.Contains(err.Error(), "listen") {
		t.Fatalf("bad address: err = %v", err)
	}
}
