module popstab

go 1.24
